//! FFT-based cross-correlation (the paper's Eq. 2 baseline).
//!
//! `x ⋆ y = F⁻¹[ F[x]* · F[y] ]` — asymptotically `O(n log n)` but
//! non-incremental and always computing the *full* lag range, which is why
//! the paper's direct bounded-lag engines beat it for online analysis
//! (Fig. 9). The radix-2 complex FFT is implemented here directly; only its
//! asymptotic behaviour matters for the comparison.

use crate::corr::CorrSeries;
use e2eprof_timeseries::DenseSeries;

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

/// In-place iterative radix-2 FFT (decimation in time).
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
pub fn fft(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        let j = j as usize;
        if i < j {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        for chunk in buf.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv_n = 1.0 / n as f64;
        for c in buf.iter_mut() {
            c.re *= inv_n;
            c.im *= inv_n;
        }
    }
}

/// Computes `r(d) = Σ_t x(t) · y(t + d)` for `d ∈ [0, max_lag)` via the
/// cross-correlation theorem.
///
/// The signals are aligned on a common origin, zero-padded to the next
/// power of two large enough to avoid circular aliasing, transformed,
/// multiplied (`F[x]* · F[y]`), and inverse-transformed. Note the full lag
/// range is computed regardless of `max_lag` — that is inherent to the FFT
/// route and exactly the inefficiency the paper's direct engines avoid.
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::{DenseSeries, Tick};
/// use e2eprof_xcorr::{dense, fft};
/// let x = DenseSeries::new(Tick::new(0), vec![1.0, 0.0, 2.0, 1.0]);
/// let y = DenseSeries::new(Tick::new(1), vec![3.0, 1.0, 0.0, 2.0]);
/// let direct = dense::correlate(&x, &y, 4);
/// let viafft = fft::correlate(&x, &y, 4);
/// assert!(direct.max_abs_diff(&viafft) < 1e-9);
/// ```
pub fn correlate(x: &DenseSeries, y: &DenseSeries, max_lag: u64) -> CorrSeries {
    let mut out = CorrSeries::zeros(0);
    let mut fx = Vec::new();
    let mut fy = Vec::new();
    correlate_slices_into(
        x.values(),
        x.start().index() as i64,
        y.values(),
        y.start().index() as i64,
        max_lag,
        &mut out,
        &mut fx,
        &mut fy,
    );
    out
}

/// Slice-level kernel behind [`correlate`]: the transform buffers `fx`/`fy`
/// and the output are caller-provided so the arena-backed engine path can
/// reuse them across pairs (the per-call `O(n)` complex allocations are the
/// FFT route's main constant-factor cost at small windows).
#[allow(clippy::too_many_arguments)]
pub(crate) fn correlate_slices_into(
    xv: &[f64],
    x0: i64,
    yv: &[f64],
    y0: i64,
    max_lag: u64,
    out: &mut CorrSeries,
    fx: &mut Vec<Complex>,
    fy: &mut Vec<Complex>,
) {
    out.reset(max_lag);
    let xn = xv.len();
    let yn = yv.len();
    if xn == 0 || yn == 0 || max_lag == 0 {
        return;
    }
    let n = (xn + yn).next_power_of_two();
    fx.clear();
    fx.resize(n, Complex::default());
    fy.clear();
    fy.resize(n, Complex::default());
    for (i, &v) in xv.iter().enumerate() {
        fx[i].re = v;
    }
    for (i, &v) in yv.iter().enumerate() {
        fy[i].re = v;
    }
    fft(fx, false);
    fft(fy, false);
    for i in 0..n {
        fx[i] = fx[i].conj() * fy[i];
    }
    fft(fx, true);
    // fx[m mod n] now holds Σ_i xa[i]·ya[i+m] where xa/ya are indexed from
    // their own starts; lag d in tick space maps to m = d + (xs − ys).
    let off = x0 - y0;
    for (d, slot) in out.values_mut().iter_mut().enumerate() {
        let m = d as i64 + off;
        // Lags outside the linear support are exactly zero.
        if m <= -(xn as i64) || m >= yn as i64 {
            *slot = 0.0;
        } else {
            *slot = fx[m.rem_euclid(n as i64) as usize].re;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;
    use e2eprof_timeseries::Tick;

    fn ds(start: u64, v: Vec<f64>) -> DenseSeries {
        DenseSeries::new(Tick::new(start), v)
    }

    #[test]
    fn fft_inverse_round_trip() {
        let mut buf: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
        let orig = buf.clone();
        fft(&mut buf, false);
        fft(&mut buf, true);
        for (a, b) in buf.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-9);
            assert!(a.im.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::default(); 4];
        buf[0].re = 1.0;
        fft(&mut buf, false);
        for c in &buf {
            assert!((c.re - 1.0).abs() < 1e-12);
            assert!(c.im.abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut buf = vec![Complex::default(); 6];
        fft(&mut buf, false);
    }

    #[test]
    fn matches_direct_engine() {
        let x = ds(0, vec![0.0, 3.0, 0.0, 1.0, 1.0, 0.0, 2.0]);
        let y = ds(0, vec![1.0, 0.0, 3.0, 0.0, 1.0, 1.0, 0.0, 2.0, 5.0]);
        let d = dense::correlate(&x, &y, 8);
        let f = correlate(&x, &y, 8);
        assert!(d.max_abs_diff(&f) < 1e-9);
    }

    #[test]
    fn matches_direct_engine_with_offsets() {
        let x = ds(50, vec![1.0, 2.0, 0.0, 4.0]);
        let y = ds(47, vec![2.0, 0.0, 1.0, 1.0, 2.0, 0.0, 4.0, 0.0, 1.0]);
        let d = dense::correlate(&x, &y, 10);
        let f = correlate(&x, &y, 10);
        assert!(d.max_abs_diff(&f) < 1e-9);
    }

    #[test]
    fn lag_bound_larger_than_signals() {
        let x = ds(0, vec![1.0, 1.0]);
        let y = ds(0, vec![1.0, 1.0]);
        let d = dense::correlate(&x, &y, 20);
        let f = correlate(&x, &y, 20);
        assert!(d.max_abs_diff(&f) < 1e-9);
    }

    #[test]
    fn empty_input_yields_zeros() {
        let x = ds(0, vec![]);
        let y = ds(0, vec![1.0]);
        let r = correlate(&x, &y, 4);
        assert_eq!(r.values(), &[0.0; 4]);
    }
}

#[cfg(test)]
mod precision_tests {
    use super::*;
    use crate::dense;
    use e2eprof_timeseries::{DenseSeries, Tick};

    /// Pseudo-random signal of length n.
    fn noise(n: usize, mut seed: u64) -> Vec<f64> {
        (0..n)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                (seed % 1000) as f64 / 100.0
            })
            .collect()
    }

    #[test]
    fn large_transform_round_trip_precision() {
        // 2^17-point round trip: butterflies and twiddles must not
        // accumulate error beyond ~1e-7 relative.
        let n = 1 << 17;
        let orig: Vec<Complex> = noise(n, 3)
            .into_iter()
            .map(|v| Complex::new(v, 0.0))
            .collect();
        let mut buf = orig.clone();
        fft(&mut buf, false);
        fft(&mut buf, true);
        let max_err = buf
            .iter()
            .zip(&orig)
            .map(|(a, b)| (a.re - b.re).abs().max(a.im.abs()))
            .fold(0.0, f64::max);
        assert!(max_err < 1e-7, "round-trip error {max_err}");
    }

    #[test]
    fn large_correlation_matches_direct() {
        // 32k-point signals: FFT correlation vs the O(n·L) direct path.
        let x = DenseSeries::new(Tick::new(0), noise(32_768, 5));
        let y = DenseSeries::new(Tick::new(7), noise(40_000, 9));
        let f = correlate(&x, &y, 64);
        let d = dense::correlate(&x, &y, 64);
        // Values are ~sums of 32k products of O(10) magnitudes (~1e6);
        // allow relative 1e-9.
        let max_rel = f
            .values()
            .iter()
            .zip(d.values())
            .map(|(a, b)| (a - b).abs() / b.abs().max(1.0))
            .fold(0.0, f64::max);
        assert!(max_rel < 1e-9, "relative error {max_rel}");
    }
}
