//! The unified engine interface used by pathmap (and Fig. 9's comparison).
//!
//! All engines consume run-length-encoded signals — the format streamed by
//! tracer agents — and produce identical raw lagged products. They differ
//! only in *how much work* they do: the dense engine first decompresses to
//! the full window, the sparse engine decodes runs to entries, the RLE
//! engine works natively, and the FFT engine pays the full-lag-range
//! transform. That cost difference is exactly the paper's Fig. 9.

use crate::arena::CorrArena;
use crate::corr::CorrSeries;
use crate::{dense, fft, rle, sparse};
use e2eprof_timeseries::{DenseSeries, RleSeries};
use std::fmt;

/// A cross-correlation strategy.
///
/// Implementations must all compute the same function:
/// `r(d) = Σ_t x(t) · y(t + d)` for `d ∈ [0, max_lag)`, with `t` ranging
/// over `x`'s span and `y` zero outside its span.
pub trait Correlator: fmt::Debug + Send + Sync {
    /// Computes the raw lagged products.
    fn correlate(&self, x: &RleSeries, y: &RleSeries, max_lag: u64) -> CorrSeries;

    /// A short human-readable strategy name (used in reports and Fig. 9).
    fn name(&self) -> &'static str;

    /// Computes the raw lagged products into `out`, drawing every decode
    /// and transform buffer from `arena` so a caller looping over many
    /// pairs stops allocating once the arena has warmed up.
    ///
    /// Must produce values bitwise identical to
    /// [`correlate`](Correlator::correlate); the provided engines all
    /// route both entry points through one kernel. The default simply
    /// delegates (correct for any implementation, but without reuse).
    fn correlate_into(
        &self,
        x: &RleSeries,
        y: &RleSeries,
        max_lag: u64,
        out: &mut CorrSeries,
        arena: &mut CorrArena,
    ) {
        let _ = arena;
        *out = self.correlate(x, y, max_lag);
    }

    /// Correlates one source against many targets, returning results in
    /// input order.
    ///
    /// The default loops [`correlate`](Correlator::correlate) — bitwise
    /// identical to the caller doing so itself. The FFT engine overrides
    /// it to forward-transform the source once per padded length and
    /// reuse `F[x]` across the batch (still bitwise identical to its own
    /// per-pair path), and the auto engine weighs that amortized cost
    /// when choosing how to serve the batch.
    fn correlate_fanout(&self, x: &RleSeries, ys: &[&RleSeries], max_lag: u64) -> Vec<CorrSeries> {
        ys.iter().map(|y| self.correlate(x, y, max_lag)).collect()
    }

    /// Correlates a batch of signal pairs, fanning the work out over up to
    /// `num_workers` scoped threads.
    ///
    /// Outputs are returned **in input order** and each pair is computed
    /// by exactly one worker with the same arithmetic as
    /// [`correlate`](Correlator::correlate), so the result is bitwise
    /// identical to a serial loop for every worker count (`<= 1` runs on
    /// the calling thread without spawning). Each worker reuses one
    /// [`CorrArena`] across its whole shard.
    fn correlate_batch(
        &self,
        pairs: &[(&RleSeries, &RleSeries)],
        max_lag: u64,
        num_workers: usize,
    ) -> Vec<CorrSeries> {
        let run_shard = |shard: &[(&RleSeries, &RleSeries)]| {
            let mut arena = CorrArena::new();
            shard
                .iter()
                .map(|&(x, y)| {
                    let mut out = CorrSeries::zeros(0);
                    self.correlate_into(x, y, max_lag, &mut out, &mut arena);
                    out
                })
                .collect::<Vec<CorrSeries>>()
        };
        if num_workers <= 1 || pairs.len() <= 1 {
            return run_shard(pairs);
        }
        let shards = num_workers.min(pairs.len());
        let per_shard = pairs.len().div_ceil(shards);
        std::thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .chunks(per_shard)
                .map(|shard| scope.spawn(move || run_shard(shard)))
                .collect();
            let mut out = Vec::with_capacity(pairs.len());
            for h in handles {
                out.extend(h.join().expect("correlation worker panicked"));
            }
            out
        })
    }
}

/// Direct bounded-lag correlation on the decompressed window
/// ("no compression").
#[derive(Debug, Clone, Copy, Default)]
pub struct DenseCorrelator;

impl Correlator for DenseCorrelator {
    fn correlate(&self, x: &RleSeries, y: &RleSeries, max_lag: u64) -> CorrSeries {
        let mut out = CorrSeries::zeros(0);
        self.correlate_into(x, y, max_lag, &mut out, &mut CorrArena::new());
        out
    }

    fn correlate_into(
        &self,
        x: &RleSeries,
        y: &RleSeries,
        max_lag: u64,
        out: &mut CorrSeries,
        arena: &mut CorrArena,
    ) {
        let fit = arena.dense_x.capacity() >= x.len() as usize
            && arena.dense_y.capacity() >= y.len() as usize;
        arena.note_acquire(fit);
        x.decode_dense_into(&mut arena.dense_x);
        y.decode_dense_into(&mut arena.dense_y);
        dense::correlate_slices_into(
            &arena.dense_x,
            x.start().index() as i64,
            &arena.dense_y,
            y.start().index() as i64,
            max_lag,
            out,
        );
    }

    fn name(&self) -> &'static str {
        "no-compression"
    }
}

/// Direct bounded-lag correlation skipping quiet zones
/// ("burst compression").
#[derive(Debug, Clone, Copy, Default)]
pub struct SparseCorrelator;

impl Correlator for SparseCorrelator {
    fn correlate(&self, x: &RleSeries, y: &RleSeries, max_lag: u64) -> CorrSeries {
        let mut out = CorrSeries::zeros(0);
        self.correlate_into(x, y, max_lag, &mut out, &mut CorrArena::new());
        out
    }

    fn correlate_into(
        &self,
        x: &RleSeries,
        y: &RleSeries,
        max_lag: u64,
        out: &mut CorrSeries,
        arena: &mut CorrArena,
    ) {
        let fit = arena.entries_x.capacity() >= x.support() as usize
            && arena.entries_y.capacity() >= y.support() as usize;
        arena.note_acquire(fit);
        x.decode_sparse_into(&mut arena.entries_x);
        y.decode_sparse_into(&mut arena.entries_y);
        sparse::correlate_entries_into(&arena.entries_x, &arena.entries_y, max_lag, out);
    }

    fn name(&self) -> &'static str {
        "burst-compression"
    }
}

/// Native correlation on run-length-encoded signals ("RLE compression") —
/// the engine the online pathmap uses by default.
#[derive(Debug, Clone, Copy, Default)]
pub struct RleCorrelator;

impl Correlator for RleCorrelator {
    fn correlate(&self, x: &RleSeries, y: &RleSeries, max_lag: u64) -> CorrSeries {
        rle::correlate(x, y, max_lag)
    }

    fn correlate_into(
        &self,
        x: &RleSeries,
        y: &RleSeries,
        max_lag: u64,
        out: &mut CorrSeries,
        arena: &mut CorrArena,
    ) {
        let fit = arena.rle_scratch.capacity() >= max_lag as usize + 2;
        arena.note_acquire(fit);
        rle::correlate_into(x, y, max_lag, out, &mut arena.rle_scratch);
    }

    fn name(&self) -> &'static str {
        "rle-compression"
    }
}

/// FFT-based correlation (Eq. 2), the non-incremental full-lag baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct FftCorrelator;

impl Correlator for FftCorrelator {
    fn correlate(&self, x: &RleSeries, y: &RleSeries, max_lag: u64) -> CorrSeries {
        let mut out = CorrSeries::zeros(0);
        self.correlate_into(x, y, max_lag, &mut out, &mut CorrArena::new());
        out
    }

    fn correlate_into(
        &self,
        x: &RleSeries,
        y: &RleSeries,
        max_lag: u64,
        out: &mut CorrSeries,
        arena: &mut CorrArena,
    ) {
        let n = (x.len() as usize + y.len() as usize).next_power_of_two();
        let fit = arena.dense_x.capacity() >= x.len() as usize
            && arena.dense_y.capacity() >= y.len() as usize
            && arena.fft_x.capacity() >= n
            && arena.fft_y.capacity() >= n;
        arena.note_acquire(fit);
        x.decode_dense_into(&mut arena.dense_x);
        y.decode_dense_into(&mut arena.dense_y);
        fft::correlate_slices_into(
            &arena.dense_x,
            x.start().index() as i64,
            &arena.dense_y,
            y.start().index() as i64,
            max_lag,
            out,
            &mut arena.fft_x,
            &mut arena.fft_y,
        );
    }

    fn correlate_fanout(&self, x: &RleSeries, ys: &[&RleSeries], max_lag: u64) -> Vec<CorrSeries> {
        let mut xd = Vec::new();
        x.decode_dense_into(&mut xd);
        let xs = DenseSeries::new(x.start(), xd);
        let yds: Vec<DenseSeries> = ys
            .iter()
            .map(|y| {
                let mut v = Vec::new();
                y.decode_dense_into(&mut v);
                DenseSeries::new(y.start(), v)
            })
            .collect();
        let refs: Vec<&DenseSeries> = yds.iter().collect();
        fft::correlate_many(&xs, &refs, max_lag)
    }

    fn name(&self) -> &'static str {
        "fft"
    }
}

/// All four stateless engines, for head-to-head comparisons.
pub fn all_engines() -> Vec<Box<dyn Correlator>> {
    vec![
        Box::new(DenseCorrelator),
        Box::new(SparseCorrelator),
        Box::new(RleCorrelator),
        Box::new(FftCorrelator),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2eprof_timeseries::{DenseSeries, Tick};

    fn rles(start: u64, v: Vec<f64>) -> RleSeries {
        DenseSeries::new(Tick::new(start), v).to_sparse().to_rle()
    }

    #[test]
    fn all_engines_agree() {
        let x = rles(3, vec![1.0, 1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 3.0, 0.0, 1.0]);
        let y = rles(
            0,
            vec![
                5.0, 0.0, 0.0, 1.0, 1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 3.0, 0.0, 1.0, 2.0,
            ],
        );
        let reference = DenseCorrelator.correlate(&x, &y, 9);
        for engine in all_engines() {
            let got = engine.correlate(&x, &y, 9);
            assert!(
                reference.max_abs_diff(&got) < 1e-9,
                "{} disagrees with reference",
                engine.name()
            );
        }
    }

    #[test]
    fn batch_is_bitwise_identical_to_serial_for_any_worker_count() {
        let xs: Vec<RleSeries> = (0..7)
            .map(|i| rles(i, (0..24).map(|t| ((t * 7 + i) % 5) as f64).collect()))
            .collect();
        let ys: Vec<RleSeries> = (0..7)
            .map(|i| rles(0, (0..32).map(|t| ((t * 3 + i) % 4) as f64).collect()))
            .collect();
        let pairs: Vec<(&RleSeries, &RleSeries)> = xs.iter().zip(&ys).collect();
        let engine = RleCorrelator;
        let serial: Vec<CorrSeries> = pairs
            .iter()
            .map(|&(x, y)| engine.correlate(x, y, 8))
            .collect();
        for workers in [1, 2, 3, 7, 32] {
            let batched = engine.correlate_batch(&pairs, 8, workers);
            assert_eq!(batched.len(), serial.len());
            for (b, s) in batched.iter().zip(&serial) {
                assert_eq!(b.values(), s.values(), "workers={workers}");
            }
        }
    }

    #[test]
    fn batch_works_through_a_trait_object() {
        let x = rles(0, vec![1.0, 0.0, 2.0]);
        let y = rles(0, vec![0.0, 1.0, 0.0, 2.0]);
        let engine: Box<dyn Correlator> = Box::new(SparseCorrelator);
        let out = engine.correlate_batch(&[(&x, &y), (&y, &x)], 4, 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].values(), engine.correlate(&x, &y, 4).values());
        assert_eq!(out[1].values(), engine.correlate(&y, &x, 4).values());
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(RleCorrelator.correlate_batch(&[], 4, 4).is_empty());
    }

    #[test]
    fn correlate_into_is_bitwise_identical_and_stops_growing() {
        let xs: Vec<RleSeries> = (0..6)
            .map(|i| rles(i, (0..40).map(|t| ((t * 5 + i) % 3) as f64).collect()))
            .collect();
        let ys: Vec<RleSeries> = (0..6)
            .map(|i| rles(0, (0..48).map(|t| ((t * 7 + i) % 4) as f64).collect()))
            .collect();
        for engine in all_engines() {
            let mut arena = CorrArena::new();
            let mut out = CorrSeries::zeros(0);
            for round in 0..3 {
                for (x, y) in xs.iter().zip(&ys) {
                    engine.correlate_into(x, y, 12, &mut out, &mut arena);
                    let direct = engine.correlate(x, y, 12);
                    assert_eq!(out.values(), direct.values(), "{}", engine.name());
                }
                if round == 0 {
                    arena.reset_stats();
                }
            }
            // After the first full pass every buffer has reached its
            // steady-state size: no further growth allowed.
            let stats = arena.stats();
            assert_eq!(stats.acquires, 12, "{}", engine.name());
            assert_eq!(stats.grows, 0, "{} grew after warm-up", engine.name());
        }
    }

    #[test]
    fn fanout_matches_per_pair_for_every_engine() {
        let x = rles(5, (0..30).map(|t| ((t * 7) % 5) as f64).collect());
        let ys: Vec<RleSeries> = (0..5)
            .map(|i| {
                rles(
                    i,
                    (0..(20 + 8 * i))
                        .map(|t| ((t * 3 + i) % 4) as f64)
                        .collect(),
                )
            })
            .collect();
        let refs: Vec<&RleSeries> = ys.iter().collect();
        for engine in all_engines() {
            let batch = engine.correlate_fanout(&x, &refs, 11);
            assert_eq!(batch.len(), ys.len());
            for (y, got) in ys.iter().zip(&batch) {
                let solo = engine.correlate(&x, y, 11);
                let same = solo
                    .values()
                    .iter()
                    .zip(got.values())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "{} fanout diverged from per-pair", engine.name());
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        let engines = all_engines();
        let mut names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
