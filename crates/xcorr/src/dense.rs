//! Direct bounded-lag correlation on uncompressed signals.
//!
//! This is the paper's "no compression" variant: Eq. 1's numerator computed
//! directly, with the single optimization of bounding the lag range by the
//! maximum transaction delay `T_u` — `O((W/τ) · (T_u/τ))` instead of
//! `O((W/τ)²)`. It doubles as the reference implementation the optimized
//! engines are tested against.
//!
//! Each lag is one dot product of the overlapping window portions, computed
//! by the [`simd`] kernel (AVX2/SSE2 on x86_64, 4-lane
//! unrolled scalar elsewhere) — on dense windows this engine is
//! memory-bandwidth-bound rather than ALU-bound, which is why the adaptive
//! backend picks it whenever the signals' density makes run/entry-skipping
//! pointless.

use crate::corr::CorrSeries;
use crate::simd;
use e2eprof_timeseries::DenseSeries;

/// Computes `r(d) = Σ_t x(t) · y(t + d)` for `d ∈ [0, max_lag)`.
///
/// `t` ranges over `x`'s span; `y` is treated as zero outside its span, so
/// the two series may cover different tick ranges (e.g. the target signal
/// extends `T_u` ticks past the source window).
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::{DenseSeries, Tick};
/// use e2eprof_xcorr::dense;
/// let x = DenseSeries::new(Tick::new(0), vec![1.0, 0.0, 2.0]);
/// let y = DenseSeries::new(Tick::new(0), vec![0.0, 1.0, 0.0, 2.0]);
/// let r = dense::correlate(&x, &y, 2);
/// // lag 1: x(0)·y(1) + x(2)·y(3) = 1 + 4
/// assert_eq!(r.values(), &[0.0, 5.0]);
/// ```
pub fn correlate(x: &DenseSeries, y: &DenseSeries, max_lag: u64) -> CorrSeries {
    let mut out = CorrSeries::zeros(0);
    correlate_slices_into(
        x.values(),
        x.start().index() as i64,
        y.values(),
        y.start().index() as i64,
        max_lag,
        &mut out,
    );
    out
}

/// Slice-level kernel behind [`correlate`]: correlates `xv` (starting at
/// absolute tick `x0`) against `yv` (starting at `y0`) into `out`, reusing
/// `out`'s allocation. The arena-backed engine path decodes RLE windows
/// into reusable buffers and calls this directly.
pub(crate) fn correlate_slices_into(
    xv: &[f64],
    x0: i64,
    yv: &[f64],
    y0: i64,
    max_lag: u64,
    out: &mut CorrSeries,
) {
    let off = x0 - y0;
    out.reset(max_lag);
    for (d, slot) in out.values_mut().iter_mut().enumerate() {
        // y index j = i + d + off must lie in [0, yv.len()).
        let shift = d as i64 + off;
        let i_lo = (-shift).max(0) as usize;
        let i_hi = (yv.len() as i64 - shift).clamp(0, xv.len() as i64) as usize;
        if i_lo >= i_hi {
            continue; // slot already zeroed by reset
        }
        let j_lo = (i_lo as i64 + shift) as usize;
        let j_hi = (i_hi as i64 + shift) as usize;
        *slot = simd::dot(&xv[i_lo..i_hi], &yv[j_lo..j_hi]);
    }
}

/// Full-range correlation: every lag from 0 to `x.len() + y.len()`.
///
/// This is what the un-optimized Eq. 1 (or the FFT route) computes; used as
/// a baseline in complexity comparisons.
pub fn correlate_full(x: &DenseSeries, y: &DenseSeries) -> CorrSeries {
    correlate(x, y, x.len() + y.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2eprof_timeseries::Tick;

    #[test]
    fn identical_signals_peak_at_zero_lag() {
        let x = DenseSeries::new(Tick::new(0), vec![1.0, 2.0, 3.0]);
        let r = correlate(&x, &x, 3);
        assert_eq!(r.values()[0], 14.0);
        assert!(r.values()[1] < r.values()[0]);
        assert_eq!(r.peak().unwrap().0, 0);
    }

    #[test]
    fn shifted_copy_peaks_at_shift() {
        let x = DenseSeries::new(Tick::new(0), vec![0.0, 5.0, 1.0, 0.0, 0.0, 0.0]);
        let y = DenseSeries::new(Tick::new(0), vec![0.0, 0.0, 0.0, 5.0, 1.0, 0.0]);
        let r = correlate(&x, &y, 5);
        assert_eq!(r.peak().unwrap().0, 2);
    }

    #[test]
    fn misaligned_spans_are_handled() {
        // Same underlying signal, but y's storage starts later.
        let x = DenseSeries::new(Tick::new(10), vec![1.0, 0.0, 2.0]);
        let y = DenseSeries::new(Tick::new(11), vec![1.0, 0.0, 2.0]);
        // y(t) equals x(t-1): lag 1 aligns them.
        let r = correlate(&x, &y, 3);
        assert_eq!(r.value_at(1), 5.0);
    }

    #[test]
    fn disjoint_signals_correlate_to_zero() {
        let x = DenseSeries::new(Tick::new(0), vec![1.0, 1.0]);
        let y = DenseSeries::new(Tick::new(100), vec![1.0, 1.0]);
        let r = correlate(&x, &y, 10);
        assert!(r.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn full_range_covers_all_overlaps() {
        let x = DenseSeries::new(Tick::new(0), vec![1.0]);
        let y = DenseSeries::new(Tick::new(0), vec![0.0, 0.0, 7.0]);
        let r = correlate_full(&x, &y);
        assert_eq!(r.value_at(2), 7.0);
        assert_eq!(r.max_lag(), 4);
    }

    #[test]
    fn zero_lag_bound_yields_empty() {
        let x = DenseSeries::new(Tick::new(0), vec![1.0]);
        let r = correlate(&x, &x, 0);
        assert_eq!(r.max_lag(), 0);
    }
}
