//! The result type shared by all correlation engines.

use serde::{Deserialize, Serialize};

/// A lag-indexed correlation series: `values[d] = r(d) = Σ_t x(t) · y(t+d)`
/// for `d ∈ [0, max_lag)`.
///
/// All engines in this crate produce bit-comparable `CorrSeries` for the
/// same inputs (up to floating-point association order), which is how the
/// optimized engines are validated against the reference implementation.
///
/// # Example
///
/// ```
/// use e2eprof_xcorr::CorrSeries;
/// let c = CorrSeries::new(vec![0.0, 5.0, 1.0]);
/// assert_eq!(c.max_lag(), 3);
/// assert_eq!(c.value_at(1), 5.0);
/// assert_eq!(c.peak(), Some((1, 5.0)));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CorrSeries {
    values: Vec<f64>,
}

impl CorrSeries {
    /// Wraps a vector of per-lag values (index = lag in ticks).
    pub fn new(values: Vec<f64>) -> Self {
        CorrSeries { values }
    }

    /// An all-zero series over `max_lag` lags.
    pub fn zeros(max_lag: u64) -> Self {
        CorrSeries {
            values: vec![0.0; max_lag as usize],
        }
    }

    /// Resets to all zeros over `max_lag` lags, reusing the allocation.
    pub fn reset(&mut self, max_lag: u64) {
        self.values.clear();
        self.values.resize(max_lag as usize, 0.0);
    }

    /// Number of lags covered (the `T_u/τ` bound).
    pub fn max_lag(&self) -> u64 {
        self.values.len() as u64
    }

    /// Overwrites this series with the contents of `other`, reusing the
    /// existing allocation when it is large enough. The analyzer's
    /// steady-state refresh snapshots every incremental correlator into a
    /// persistent per-pair cache this way, so no per-pair `clone` happens
    /// once the cache has warmed up.
    pub fn copy_from(&mut self, other: &CorrSeries) {
        self.values.clear();
        self.values.extend_from_slice(&other.values);
    }

    /// Allocated capacity in lags (scratch-reuse accounting).
    pub fn capacity(&self) -> usize {
        self.values.capacity()
    }

    /// The per-lag values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access for in-place accumulation (incremental engine).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The value at lag `d` (zero beyond the bound).
    pub fn value_at(&self, d: u64) -> f64 {
        self.values.get(d as usize).copied().unwrap_or(0.0)
    }

    /// The lag with the largest value, if the series is non-empty.
    pub fn peak(&self) -> Option<(u64, f64)> {
        self.values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("non-finite correlation value"))
            .map(|(i, &v)| (i as u64, v))
    }

    /// Adds `other` element-wise (series must have equal lag bounds).
    ///
    /// # Panics
    ///
    /// Panics if the lag bounds differ.
    pub fn add_assign(&mut self, other: &CorrSeries) {
        assert_eq!(self.values.len(), other.values.len(), "lag bound mismatch");
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += b;
        }
    }

    /// Subtracts `other` element-wise (series must have equal lag bounds).
    ///
    /// # Panics
    ///
    /// Panics if the lag bounds differ.
    pub fn sub_assign(&mut self, other: &CorrSeries) {
        assert_eq!(self.values.len(), other.values.len(), "lag bound mismatch");
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a -= b;
        }
    }

    /// Maximum absolute element-wise difference to another series of the
    /// same lag bound (used to validate engines against each other).
    ///
    /// # Panics
    ///
    /// Panics if the lag bounds differ.
    pub fn max_abs_diff(&self, other: &CorrSeries) -> f64 {
        assert_eq!(self.values.len(), other.values.len(), "lag bound mismatch");
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_finds_max() {
        let c = CorrSeries::new(vec![1.0, 3.0, 2.0]);
        assert_eq!(c.peak(), Some((1, 3.0)));
    }

    #[test]
    fn peak_of_empty_is_none() {
        assert_eq!(CorrSeries::zeros(0).peak(), None);
    }

    #[test]
    fn add_sub_round_trip() {
        let mut a = CorrSeries::new(vec![1.0, 2.0]);
        let b = CorrSeries::new(vec![0.5, 0.25]);
        a.add_assign(&b);
        assert_eq!(a.values(), &[1.5, 2.25]);
        a.sub_assign(&b);
        assert_eq!(a.values(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "lag bound mismatch")]
    fn mismatched_bounds_panic() {
        let mut a = CorrSeries::zeros(2);
        a.add_assign(&CorrSeries::zeros(3));
    }

    #[test]
    fn value_beyond_bound_is_zero() {
        let c = CorrSeries::new(vec![1.0]);
        assert_eq!(c.value_at(5), 0.0);
    }

    #[test]
    fn max_abs_diff_is_linf() {
        let a = CorrSeries::new(vec![1.0, 2.0, 3.0]);
        let b = CorrSeries::new(vec![1.5, 2.0, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }
}
