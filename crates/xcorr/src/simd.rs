//! SIMD dot-product kernel backing the dense correlation engine.
//!
//! Each output lag of the bounded dense correlation is one dot product of
//! two equal-length `f64` slices (the overlapping portions of the source
//! and shifted target windows), so the whole engine reduces to [`dot`].
//!
//! Dispatch rules (see DESIGN.md §6.3):
//!
//! * On `x86_64`, an AVX2 path (4 lanes × 4 independent accumulators) is
//!   selected at runtime via `is_x86_feature_detected!`; otherwise an SSE2
//!   path (2 lanes × 4 accumulators) runs — SSE2 is part of the `x86_64`
//!   baseline, so there is no scalar fallback on this architecture.
//!   Feature detection is cached by the standard library, so the per-call
//!   cost is one relaxed atomic load.
//! * On every other architecture, [`dot_unrolled`] — a 4-accumulator
//!   scalar loop the autovectorizer can turn into whatever the target
//!   offers — is the only path, and the crate stays entirely `unsafe`-free.
//!
//! All paths reassociate the summation (four partial accumulators reduced
//! pairwise), so results may differ from strict left-to-right evaluation
//! in the last ulps. The engine-equivalence suites compare engines under a
//! tolerance for exactly this reason, and on integer-valued signals every
//! association order is exact, which is what the bitwise proptests rely on.
//!
//! This is the only module in the crate allowed to contain `unsafe` (the
//! crate root sets `deny(unsafe_code)`); every unsafe block is an intrinsic
//! call or raw load whose bounds are established by the loop condition.
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

/// Dot product of the overlapping prefix of `a` and `b`, using the best
/// kernel the host supports.
///
/// # Example
///
/// ```
/// let a = [1.0, 2.0, 3.0];
/// let b = [4.0, 5.0, 6.0];
/// assert_eq!(e2eprof_xcorr::simd::dot(&a, &b), 32.0);
/// ```
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    dot_dispatch(a, b)
}

/// The name of the kernel [`dot`] dispatches to on this host
/// (`"avx2"`, `"sse2"`, or `"scalar"`). Recorded in bench artifacts.
pub fn kernel_name() -> &'static str {
    kernel_name_impl()
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn dot_dispatch(a: &[f64], b: &[f64]) -> f64 {
    if is_x86_feature_detected!("avx2") {
        // SAFETY: reached only when the host CPU reports AVX2.
        unsafe { dot_avx2(a, b) }
    } else {
        // SAFETY: SSE2 is unconditionally present on x86_64.
        unsafe { dot_sse2(a, b) }
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn dot_dispatch(a: &[f64], b: &[f64]) -> f64 {
    dot_unrolled(a, b)
}

#[cfg(target_arch = "x86_64")]
fn kernel_name_impl() -> &'static str {
    if is_x86_feature_detected!("avx2") {
        "avx2"
    } else {
        "sse2"
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn kernel_name_impl() -> &'static str {
    "scalar"
}

/// Portable 4-lane-unrolled kernel: four independent accumulators give the
/// autovectorizer a dependency-free inner loop and cut the add-latency
/// chain four-fold even when it stays scalar. Used as the non-x86 path and
/// as the reference the SIMD paths are tested against.
pub fn dot_unrolled(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (ka, kb) in (&mut ca).zip(&mut cb) {
        acc[0] += ka[0] * kb[0];
        acc[1] += ka[1] * kb[1];
        acc[2] += ka[2] * kb[2];
        acc[3] += ka[3] * kb[3];
    }
    let mut sum = (acc[0] + acc[2]) + (acc[1] + acc[3]);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        sum += x * y;
    }
    sum
}

/// AVX2 kernel: 4×4 doubles per iteration with unaligned loads (the slices
/// come from arbitrary window offsets, so alignment cannot be assumed).
///
/// # Safety
///
/// The host CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
    use core::arch::x86_64::*;
    let n = a.len().min(b.len());
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    // SAFETY (applies to every load below): the loop conditions keep each
    // 4-wide load within the first `n` elements of both slices.
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut acc2 = _mm256_setzero_pd();
    let mut acc3 = _mm256_setzero_pd();
    let mut i = 0usize;
    while i + 16 <= n {
        unsafe {
            let m0 = _mm256_mul_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)));
            let m1 = _mm256_mul_pd(
                _mm256_loadu_pd(ap.add(i + 4)),
                _mm256_loadu_pd(bp.add(i + 4)),
            );
            let m2 = _mm256_mul_pd(
                _mm256_loadu_pd(ap.add(i + 8)),
                _mm256_loadu_pd(bp.add(i + 8)),
            );
            let m3 = _mm256_mul_pd(
                _mm256_loadu_pd(ap.add(i + 12)),
                _mm256_loadu_pd(bp.add(i + 12)),
            );
            acc0 = _mm256_add_pd(acc0, m0);
            acc1 = _mm256_add_pd(acc1, m1);
            acc2 = _mm256_add_pd(acc2, m2);
            acc3 = _mm256_add_pd(acc3, m3);
        }
        i += 16;
    }
    while i + 4 <= n {
        unsafe {
            acc0 = _mm256_add_pd(
                acc0,
                _mm256_mul_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i))),
            );
        }
        i += 4;
    }
    let acc = _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
    let mut lanes = [0.0f64; 4];
    // SAFETY: `lanes` is a 4-element f64 array; unaligned store is in bounds.
    unsafe { _mm256_storeu_pd(lanes.as_mut_ptr(), acc) };
    let mut sum = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
    for k in i..n {
        sum += a[k] * b[k];
    }
    sum
}

/// SSE2 kernel: 4×2 doubles per iteration. The floor for `x86_64` hosts
/// without AVX2.
///
/// # Safety
///
/// The host CPU must support SSE2 (always true on x86_64).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn dot_sse2(a: &[f64], b: &[f64]) -> f64 {
    use core::arch::x86_64::*;
    let n = a.len().min(b.len());
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc0 = _mm_setzero_pd();
    let mut acc1 = _mm_setzero_pd();
    let mut acc2 = _mm_setzero_pd();
    let mut acc3 = _mm_setzero_pd();
    let mut i = 0usize;
    while i + 8 <= n {
        // SAFETY: `i + 8 <= n` keeps each 2-wide load within both slices.
        unsafe {
            let m0 = _mm_mul_pd(_mm_loadu_pd(ap.add(i)), _mm_loadu_pd(bp.add(i)));
            let m1 = _mm_mul_pd(_mm_loadu_pd(ap.add(i + 2)), _mm_loadu_pd(bp.add(i + 2)));
            let m2 = _mm_mul_pd(_mm_loadu_pd(ap.add(i + 4)), _mm_loadu_pd(bp.add(i + 4)));
            let m3 = _mm_mul_pd(_mm_loadu_pd(ap.add(i + 6)), _mm_loadu_pd(bp.add(i + 6)));
            acc0 = _mm_add_pd(acc0, m0);
            acc1 = _mm_add_pd(acc1, m1);
            acc2 = _mm_add_pd(acc2, m2);
            acc3 = _mm_add_pd(acc3, m3);
        }
        i += 8;
    }
    let acc = _mm_add_pd(_mm_add_pd(acc0, acc1), _mm_add_pd(acc2, acc3));
    let mut lanes = [0.0f64; 2];
    // SAFETY: `lanes` is a 2-element f64 array.
    unsafe { _mm_storeu_pd(lanes.as_mut_ptr(), acc) };
    let mut sum = lanes[0] + lanes[1];
    for k in i..n {
        sum += a[k] * b[k];
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Strict left-to-right reference.
    fn dot_naive(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn signal(len: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                match state % 4 {
                    0 => 0.0,
                    1 => 1.0,
                    2 => (state % 7) as f64,
                    _ => ((state % 100) as f64).sqrt(),
                }
            })
            .collect()
    }

    #[test]
    fn matches_naive_at_every_length() {
        // Sweep all remainder classes of both the 16-wide and 4-wide loops.
        for len in 0..70 {
            let a = signal(len, 3);
            let b = signal(len, 11);
            let want = dot_naive(&a, &b);
            let got = dot(&a, &b);
            let tol = 1e-12 * want.abs().max(1.0);
            assert!((got - want).abs() < tol, "len={len}: {got} vs {want}");
            let unrolled = dot_unrolled(&a, &b);
            assert!((unrolled - want).abs() < tol, "unrolled len={len}");
        }
    }

    #[test]
    fn exact_on_integer_values() {
        // Integer products and sums below 2^53 are exact under every
        // association order, so all kernels must agree bitwise.
        for len in [0, 1, 5, 16, 33, 64, 100] {
            let a: Vec<f64> = (0..len).map(|i| ((i * 7 + 3) % 5) as f64).collect();
            let b: Vec<f64> = (0..len).map(|i| ((i * 11 + 1) % 4) as f64).collect();
            assert_eq!(dot(&a, &b), dot_naive(&a, &b), "len={len}");
            assert_eq!(dot_unrolled(&a, &b), dot_naive(&a, &b), "len={len}");
        }
    }

    #[test]
    fn kernel_name_is_known() {
        assert!(["avx2", "sse2", "scalar"].contains(&kernel_name()));
    }

    #[test]
    fn uses_shorter_slice() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 10.0];
        assert_eq!(dot(&a, &b), 30.0);
        assert_eq!(dot(&b, &a), 30.0);
    }
}
