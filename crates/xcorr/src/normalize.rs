//! Eq. 1 normalization: per-lag Pearson correlation coefficients.
//!
//! The raw lagged products `r(d)` depend on signal energy; Eq. 1 of the
//! paper normalizes them into correlation coefficients in `[-1, 1]` by
//! centering both windows and dividing by their energies. With the window
//! sums `S(d) = Σ y(t+d)` and `Q(d) = Σ y(t+d)²` (over the `n` ticks of the
//! source window), the normalized value is
//!
//! ```text
//!             r(d) − x̄·S(d)
//! ρ(d) = ─────────────────────────────
//!         √(Eₓ) · √(Q(d) − S(d)²/n)
//! ```
//!
//! where `Eₓ = Σ (x − x̄)²`. `S` and `Q` are computed in `O(runs + L)` from
//! the RLE representation, so normalization never dominates the engines.

use crate::corr::CorrSeries;
use e2eprof_timeseries::{RleSeries, Tick};

/// Energy threshold below which a window is considered constant (its
/// correlation with anything is defined as zero).
pub(crate) const EPS_ENERGY: f64 = 1e-12;

/// Prefix-sum evaluator over an RLE signal: cumulative sum and sum of
/// squares of `y` over all ticks `< t`.
#[derive(Debug)]
pub(crate) struct RlePrefix<'a> {
    series: &'a RleSeries,
    /// cum[i] = (Σ value·len, Σ value²·len) over runs[0..i].
    cum: Vec<(f64, f64)>,
}

impl<'a> RlePrefix<'a> {
    pub(crate) fn new(series: &'a RleSeries) -> Self {
        let mut cum = Vec::with_capacity(series.num_runs() + 1);
        cum.push((0.0, 0.0));
        let (mut s, mut q) = (0.0, 0.0);
        for r in series.runs() {
            s += r.value() * r.len() as f64;
            q += r.value() * r.value() * r.len() as f64;
            cum.push((s, q));
        }
        RlePrefix { series, cum }
    }

    /// `(Σ_{u<t} y(u), Σ_{u<t} y(u)²)`.
    pub(crate) fn eval(&self, t: Tick) -> (f64, f64) {
        let runs = self.series.runs();
        // Number of runs ending at or before t.
        let i = runs.partition_point(|r| r.end() <= t);
        let (mut s, mut q) = self.cum[i];
        if let Some(r) = runs.get(i) {
            if r.start() < t {
                let part = (t - r.start()) as f64;
                s += r.value() * part;
                q += r.value() * r.value() * part;
            }
        }
        (s, q)
    }
}

/// Normalizes raw lagged products into per-lag Pearson coefficients.
///
/// `x` is the source window (its span defines the `n` ticks summed over);
/// `y` is the target signal the raw products were computed against.
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::{DenseSeries, Tick};
/// use e2eprof_xcorr::{rle, normalize};
/// // y is exactly x shifted by 2: Pearson coefficient 1 at lag 2.
/// let x = DenseSeries::new(Tick::new(0), vec![1.0, 3.0, 0.0, 2.0, 0.0, 0.0]);
/// let y = DenseSeries::new(Tick::new(0), vec![0.0, 0.0, 1.0, 3.0, 0.0, 2.0, 0.0, 0.0]);
/// let xr = x.to_sparse().to_rle();
/// let yr = y.to_sparse().to_rle();
/// let raw = rle::correlate(&xr, &yr, 4);
/// let rho = normalize::normalize(&raw, &xr, &yr);
/// assert!((rho.value_at(2) - 1.0).abs() < 1e-9);
/// assert!(rho.value_at(1) < 0.9);
/// ```
pub fn normalize(raw: &CorrSeries, x: &RleSeries, y: &RleSeries) -> CorrSeries {
    let n = x.len() as f64;
    if n == 0.0 {
        return CorrSeries::zeros(raw.max_lag());
    }
    let xs = x.stats();
    let x_mean = xs.mean();
    let ex = xs.centered_energy();
    let prefix = RlePrefix::new(y);
    let mut out = Vec::with_capacity(raw.max_lag() as usize);
    for d in 0..raw.max_lag() {
        let lo = x.start() + d;
        let hi = x.end() + d;
        let (s_lo, q_lo) = prefix.eval(lo);
        let (s_hi, q_hi) = prefix.eval(hi);
        let s = s_hi - s_lo;
        let q = q_hi - q_lo;
        let ey = (q - s * s / n).max(0.0);
        let num = raw.value_at(d) - x_mean * s;
        let den = (ex * ey).sqrt();
        out.push(if den > EPS_ENERGY {
            (num / den).clamp(-1.0, 1.0)
        } else {
            0.0
        });
    }
    CorrSeries::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rle;
    use e2eprof_timeseries::DenseSeries;

    fn rles(start: u64, v: Vec<f64>) -> RleSeries {
        DenseSeries::new(Tick::new(start), v).to_sparse().to_rle()
    }

    /// Direct reference: Pearson coefficient at lag d computed densely.
    fn reference_rho(x: &RleSeries, y: &RleSeries, d: u64) -> f64 {
        let n = x.len();
        let xv: Vec<f64> = (0..n).map(|i| x.value_at(x.start() + i)).collect();
        let yv: Vec<f64> = (0..n).map(|i| y.value_at(x.start() + i + d)).collect();
        let xm = xv.iter().sum::<f64>() / n as f64;
        let ym = yv.iter().sum::<f64>() / n as f64;
        let num: f64 = xv.iter().zip(&yv).map(|(a, b)| (a - xm) * (b - ym)).sum();
        let ex: f64 = xv.iter().map(|a| (a - xm) * (a - xm)).sum();
        let ey: f64 = yv.iter().map(|b| (b - ym) * (b - ym)).sum();
        if ex * ey < 1e-12 {
            0.0
        } else {
            num / (ex * ey).sqrt()
        }
    }

    #[test]
    fn matches_dense_pearson_reference() {
        let x = rles(0, vec![1.0, 0.0, 0.0, 2.0, 2.0, 0.0, 5.0, 0.0]);
        let y = rles(
            0,
            vec![0.0, 1.0, 0.0, 0.0, 2.0, 2.0, 0.0, 5.0, 0.0, 3.0, 3.0, 0.0],
        );
        let raw = rle::correlate(&x, &y, 4);
        let rho = normalize(&raw, &x, &y);
        for d in 0..4 {
            let expect = reference_rho(&x, &y, d);
            assert!(
                (rho.value_at(d) - expect).abs() < 1e-9,
                "lag {d}: got {} expect {expect}",
                rho.value_at(d)
            );
        }
    }

    #[test]
    fn exact_shift_gives_unit_coefficient() {
        let x = rles(0, vec![4.0, 0.0, 1.0, 1.0, 0.0, 0.0, 3.0, 0.0, 0.0, 0.0]);
        let y = rles(
            0,
            vec![
                0.0, 0.0, 0.0, 4.0, 0.0, 1.0, 1.0, 0.0, 0.0, 3.0, 0.0, 0.0, 0.0,
            ],
        );
        let raw = rle::correlate(&x, &y, 6);
        let rho = normalize(&raw, &x, &y);
        assert!((rho.value_at(3) - 1.0).abs() < 1e-9);
        assert_eq!(rho.peak().unwrap().0, 3);
    }

    #[test]
    fn constant_window_normalizes_to_zero() {
        let x = rles(0, vec![0.0; 8]);
        let y = rles(0, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let raw = rle::correlate(&x, &y, 4);
        let rho = normalize(&raw, &x, &y);
        assert!(rho.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn coefficients_bounded() {
        let x = rles(0, vec![9.0, 0.0, 0.0, 1.0, 4.0, 4.0, 0.0, 2.0]);
        let y = rles(0, vec![1.0, 9.0, 0.0, 0.0, 1.0, 4.0, 4.0, 0.0, 2.0, 7.0]);
        let raw = rle::correlate(&x, &y, 8);
        let rho = normalize(&raw, &x, &y);
        assert!(rho.values().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn empty_window_yields_zeros() {
        let x = RleSeries::empty(Tick::new(0), 0);
        let y = rles(0, vec![1.0, 2.0]);
        let raw = CorrSeries::zeros(3);
        let rho = normalize(&raw, &x, &y);
        assert_eq!(rho.values(), &[0.0, 0.0, 0.0]);
    }
}
