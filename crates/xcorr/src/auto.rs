//! Adaptive engine selection: a calibrated cost model picks the cheapest
//! correlation engine per signal pair.
//!
//! Fig. 9's lesson is that no engine wins everywhere: direct RLE beats FFT
//! on well-compressed signals, dense wins once density defeats run- and
//! entry-skipping, and FFT wins when the lag bound approaches the window
//! length. A static choice therefore leaves performance on the table
//! whenever a deployment mixes signal shapes — which enterprise traffic
//! does by construction (bursty clients next to saturated trunks).
//!
//! [`CostModel`] predicts each engine's running time from statistics that
//! are O(runs) to read off an [`RleSeries`] — span length, run count,
//! non-zero support, mean run length — times per-operation constants
//! either taken from [`CostModel::default`] or measured on the actual host
//! by [`CostModel::calibrate`]. [`AutoCorrelator`] evaluates the model per
//! pair and delegates; because every engine computes the same function
//! (the engine-equivalence suites), selection affects only *when* the
//! answer arrives, never what it is — see DESIGN.md §6.3 for the full
//! argument, including the FFT tolerance case.

use crate::arena::CorrArena;
use crate::corr::CorrSeries;
use crate::engine::{Correlator, DenseCorrelator, FftCorrelator, RleCorrelator, SparseCorrelator};
use e2eprof_timeseries::{DenseSeries, RleSeries, Tick};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The four stateless engines the selector chooses between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineKind {
    /// [`DenseCorrelator`] ("no-compression").
    Dense,
    /// [`SparseCorrelator`] ("burst-compression").
    Sparse,
    /// [`RleCorrelator`] ("rle-compression").
    Rle,
    /// [`FftCorrelator`] ("fft").
    Fft,
}

impl EngineKind {
    /// All kinds, in the deterministic order the selector evaluates them.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Dense,
        EngineKind::Sparse,
        EngineKind::Rle,
        EngineKind::Fft,
    ];

    /// The matching engine's [`Correlator::name`].
    pub fn as_str(self) -> &'static str {
        match self {
            EngineKind::Dense => "no-compression",
            EngineKind::Sparse => "burst-compression",
            EngineKind::Rle => "rle-compression",
            EngineKind::Fft => "fft",
        }
    }
}

/// Per-engine cost constants in nanoseconds per abstract operation.
///
/// The abstract operation counts are computed by the `*_ops` feature
/// functions below; the constants translate them to predicted wall time.
/// [`Default`] holds representative release-build constants (stable across
/// recent x86_64 hardware to well within selection accuracy);
/// [`calibrate`](CostModel::calibrate) measures the actual host once at
/// startup. Tests that need full determinism pass an explicit model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// ns per dense multiply-add (one tick × lag cell).
    pub dense_op_ns: f64,
    /// ns per sparse entry-pair visit.
    pub sparse_op_ns: f64,
    /// ns per RLE run-pair trapezoid update.
    pub rle_op_ns: f64,
    /// ns per FFT butterfly-unit (`n·log2 n` scale).
    pub fft_op_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            dense_op_ns: 0.25,
            sparse_op_ns: 1.5,
            rle_op_ns: 2.5,
            fft_op_ns: 6.0,
        }
    }
}

/// Abstract operation count of the dense engine: every source tick visits
/// every lag, plus the two window decodes.
fn dense_ops(x: &RleSeries, y: &RleSeries, max_lag: u64) -> f64 {
    x.len() as f64 * max_lag as f64 + (x.len() + y.len()) as f64
}

/// Abstract operation count of the sparse engine: each source entry visits
/// the target entries within the lag bound (estimated from the target's
/// density, capped at all of them), plus the two entry decodes.
fn sparse_ops(x: &RleSeries, y: &RleSeries, max_lag: u64) -> f64 {
    let nnx = x.support() as f64;
    let nny = y.support() as f64;
    let yn = y.len().max(1) as f64;
    nnx * (nny * max_lag as f64 / yn).min(nny) + nnx + nny
}

/// Abstract operation count of the RLE engine: each source run visits the
/// target runs whose start lies within reach (lag bound plus both mean run
/// lengths), plus the O(max_lag) prefix-sum resolve.
fn rle_ops(x: &RleSeries, y: &RleSeries, max_lag: u64) -> f64 {
    let rx = x.num_runs() as f64;
    let ry = y.num_runs() as f64;
    let yn = y.len().max(1) as f64;
    let reach = (max_lag as f64 + x.avg_run_len() + y.avg_run_len()).min(yn);
    rx * (ry * reach / yn) + max_lag as f64
}

/// Abstract operation count of the FFT engine: three `n·log2 n` transforms
/// plus the `O(n)` point-wise multiply and decodes, independent of lag
/// bound and density — the reason it only wins at large `max_lag`.
fn fft_ops(x: &RleSeries, y: &RleSeries, _max_lag: u64) -> f64 {
    let n = ((x.len() + y.len()).max(2) as usize).next_power_of_two() as f64;
    3.0 * n * n.log2() + 2.0 * n
}

/// Padded transform size for one (source, target) pair.
fn fft_padded(x: &RleSeries, y: &RleSeries) -> usize {
    ((x.len() + y.len()).max(2) as usize).next_power_of_two()
}

/// Marginal abstract operation count of one fan-out pair once the
/// source's forward transform is amortized across the batch
/// ([`crate::fft::correlate_many`]): two transforms (target forward +
/// product inverse) instead of three, plus the point-wise multiply and
/// decodes.
fn fft_shared_ops(n: f64) -> f64 {
    2.0 * n * n.log2() + 2.0 * n
}

impl CostModel {
    /// Predicted cost in ns for each engine, indexed like
    /// [`EngineKind::ALL`].
    pub fn predict(&self, x: &RleSeries, y: &RleSeries, max_lag: u64) -> [f64; 4] {
        [
            self.dense_op_ns * dense_ops(x, y, max_lag),
            self.sparse_op_ns * sparse_ops(x, y, max_lag),
            self.rle_op_ns * rle_ops(x, y, max_lag),
            self.fft_op_ns * fft_ops(x, y, max_lag),
        ]
    }

    /// The engine with the smallest predicted cost (first wins ties, so
    /// the choice is deterministic for a fixed model).
    pub fn pick(&self, x: &RleSeries, y: &RleSeries, max_lag: u64) -> EngineKind {
        let costs = self.predict(x, y, max_lag);
        let mut best = EngineKind::ALL[0];
        let mut best_cost = costs[0];
        for (kind, cost) in EngineKind::ALL.into_iter().zip(costs).skip(1) {
            if cost < best_cost {
                best = kind;
                best_cost = cost;
            }
        }
        best
    }

    /// Predicted total ns for serving a whole fan-out (one source, many
    /// targets) via the shared-transform FFT path: every pair pays the
    /// amortized marginal cost (`fft_shared_ops`) and each *distinct*
    /// padded transform size pays the source's forward `n·log2 n` once.
    pub fn predict_fanout_fft(&self, x: &RleSeries, ys: &[&RleSeries]) -> f64 {
        let mut sizes = std::collections::BTreeSet::new();
        let mut total = 0.0;
        for y in ys {
            let n = fft_padded(x, y);
            sizes.insert(n);
            total += self.fft_op_ns * fft_shared_ops(n as f64);
        }
        for n in sizes {
            let n = n as f64;
            total += self.fft_op_ns * n * n.log2();
        }
        total
    }

    /// Predicted total ns for serving a fan-out pair-by-pair, each pair on
    /// its individually cheapest engine.
    pub fn predict_fanout_best(&self, x: &RleSeries, ys: &[&RleSeries], max_lag: u64) -> f64 {
        ys.iter()
            .map(|y| {
                self.predict(x, y, max_lag)
                    .into_iter()
                    .fold(f64::INFINITY, f64::min)
            })
            .sum()
    }

    /// Measures the per-operation constants on this host with a one-shot
    /// micro-benchmark (a few tens of milliseconds; run once at analyzer
    /// startup).
    ///
    /// Each engine correlates a synthetic maximum-entropy signal (density
    /// 1, every adjacent value distinct, so runs = entries = ticks). The
    /// problem is sized so the engine's dominant term dwarfs fixed
    /// overheads *and* the working set spills out of L1 — per-op constants
    /// measured on an L1-resident toy problem come out optimistic for the
    /// dense engine and flip close dense/FFT rankings at real window
    /// sizes. The constant is the best-of-3 time divided by the predicted
    /// operation count. Calibration output is inherently host-dependent —
    /// tests needing reproducibility pass an explicit model instead.
    pub fn calibrate() -> CostModel {
        let len = 4096u64;
        let lag = 1024u64;
        let sig = |seed: u64| -> RleSeries {
            let v: Vec<f64> = (0..len).map(|t| ((t + seed) % 5 + 1) as f64).collect();
            DenseSeries::new(Tick::new(0), v).to_sparse().to_rle()
        };
        let x = sig(0);
        let y = sig(2);
        let mut arena = CorrArena::new();
        let mut out = CorrSeries::zeros(0);
        let mut time_engine = |engine: &dyn Correlator| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t0 = Instant::now();
                engine.correlate_into(&x, &y, lag, &mut out, &mut arena);
                best = best.min(t0.elapsed().as_nanos() as f64);
            }
            best.max(1.0)
        };
        CostModel {
            dense_op_ns: time_engine(&DenseCorrelator) / dense_ops(&x, &y, lag),
            sparse_op_ns: time_engine(&SparseCorrelator) / sparse_ops(&x, &y, lag),
            rle_op_ns: time_engine(&RleCorrelator) / rle_ops(&x, &y, lag),
            fft_op_ns: time_engine(&FftCorrelator) / fft_ops(&x, &y, lag),
        }
    }
}

/// A [`Correlator`] that routes every pair to the engine the cost model
/// predicts to be fastest.
///
/// Selection reads only O(runs) metadata, so its overhead is negligible
/// against any correlation it fronts. Per-engine pick counters are kept
/// for observability (bench hit-rates, analyzer diagnostics).
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::{DenseSeries, Tick};
/// use e2eprof_xcorr::{AutoCorrelator, Correlator};
/// let auto = AutoCorrelator::with_default_model();
/// let x = DenseSeries::new(Tick::new(0), vec![1.0, 0.0, 2.0]).to_sparse().to_rle();
/// let y = DenseSeries::new(Tick::new(0), vec![0.0, 1.0, 0.0, 2.0]).to_sparse().to_rle();
/// assert_eq!(auto.correlate(&x, &y, 2).values(), &[0.0, 5.0]);
/// ```
#[derive(Debug, Default)]
pub struct AutoCorrelator {
    model: CostModel,
    picks: [AtomicU64; 4],
}

impl AutoCorrelator {
    /// Creates a selector over an explicit (e.g. config-supplied) model.
    pub fn new(model: CostModel) -> Self {
        AutoCorrelator {
            model,
            picks: Default::default(),
        }
    }

    /// Creates a selector with the representative default constants
    /// (deterministic: no measurement happens).
    pub fn with_default_model() -> Self {
        Self::new(CostModel::default())
    }

    /// Creates a selector calibrated on this host (see
    /// [`CostModel::calibrate`]).
    pub fn calibrated() -> Self {
        Self::new(CostModel::calibrate())
    }

    /// The model in use.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The engine the model picks for this pair (no counter update).
    pub fn pick(&self, x: &RleSeries, y: &RleSeries, max_lag: u64) -> EngineKind {
        self.model.pick(x, y, max_lag)
    }

    /// How many correlations each engine has served, indexed like
    /// [`EngineKind::ALL`].
    pub fn pick_counts(&self) -> [u64; 4] {
        [0, 1, 2, 3].map(|i| self.picks[i].load(Ordering::Relaxed))
    }

    fn pick_counted(&self, x: &RleSeries, y: &RleSeries, max_lag: u64) -> EngineKind {
        let kind = self.model.pick(x, y, max_lag);
        let idx = EngineKind::ALL.iter().position(|&k| k == kind).unwrap();
        self.picks[idx].fetch_add(1, Ordering::Relaxed);
        kind
    }
}

impl Correlator for AutoCorrelator {
    fn correlate(&self, x: &RleSeries, y: &RleSeries, max_lag: u64) -> CorrSeries {
        match self.pick_counted(x, y, max_lag) {
            EngineKind::Dense => DenseCorrelator.correlate(x, y, max_lag),
            EngineKind::Sparse => SparseCorrelator.correlate(x, y, max_lag),
            EngineKind::Rle => RleCorrelator.correlate(x, y, max_lag),
            EngineKind::Fft => FftCorrelator.correlate(x, y, max_lag),
        }
    }

    fn correlate_into(
        &self,
        x: &RleSeries,
        y: &RleSeries,
        max_lag: u64,
        out: &mut CorrSeries,
        arena: &mut CorrArena,
    ) {
        match self.pick_counted(x, y, max_lag) {
            EngineKind::Dense => DenseCorrelator.correlate_into(x, y, max_lag, out, arena),
            EngineKind::Sparse => SparseCorrelator.correlate_into(x, y, max_lag, out, arena),
            EngineKind::Rle => RleCorrelator.correlate_into(x, y, max_lag, out, arena),
            EngineKind::Fft => FftCorrelator.correlate_into(x, y, max_lag, out, arena),
        }
    }

    fn correlate_fanout(&self, x: &RleSeries, ys: &[&RleSeries], max_lag: u64) -> Vec<CorrSeries> {
        // With ≥2 targets the batched FFT path can amortize the source's
        // forward transform; take it when the model says the whole batch
        // comes out cheaper than per-pair best-engine selection.
        if ys.len() >= 2 {
            let shared = self.model.predict_fanout_fft(x, ys);
            let per_pair = self.model.predict_fanout_best(x, ys, max_lag);
            if shared < per_pair {
                let idx = EngineKind::ALL
                    .iter()
                    .position(|&k| k == EngineKind::Fft)
                    .unwrap();
                self.picks[idx].fetch_add(ys.len() as u64, Ordering::Relaxed);
                return FftCorrelator.correlate_fanout(x, ys, max_lag);
            }
        }
        ys.iter().map(|y| self.correlate(x, y, max_lag)).collect()
    }

    fn name(&self) -> &'static str {
        "auto"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rles(start: u64, v: Vec<f64>) -> RleSeries {
        DenseSeries::new(Tick::new(start), v).to_sparse().to_rle()
    }

    /// A long near-empty signal: skipping engines should win.
    fn sparse_sig(len: u64) -> RleSeries {
        let v: Vec<f64> = (0..len)
            .map(|t| if t % 97 == 0 { 1.0 } else { 0.0 })
            .collect();
        rles(0, v)
    }

    /// A fully dense signal with distinct adjacent values: run/entry
    /// skipping buys nothing.
    fn dense_sig(len: u64) -> RleSeries {
        let v: Vec<f64> = (0..len).map(|t| (t % 5 + 1) as f64).collect();
        rles(0, v)
    }

    #[test]
    fn picks_a_skipping_engine_for_sparse_signals() {
        let m = CostModel::default();
        let x = sparse_sig(4096);
        let y = sparse_sig(4096);
        let kind = m.pick(&x, &y, 64);
        assert!(
            matches!(kind, EngineKind::Sparse | EngineKind::Rle),
            "picked {kind:?} for near-empty signals"
        );
    }

    #[test]
    fn picks_dense_or_fft_for_dense_signals() {
        let m = CostModel::default();
        let x = dense_sig(4096);
        let y = dense_sig(4096);
        let kind = m.pick(&x, &y, 256);
        assert!(
            matches!(kind, EngineKind::Dense | EngineKind::Fft),
            "picked {kind:?} for maximum-entropy dense signals"
        );
    }

    #[test]
    fn fft_wins_when_lag_bound_approaches_window() {
        let m = CostModel::default();
        let x = dense_sig(8192);
        let y = dense_sig(8192);
        assert_eq!(m.pick(&x, &y, 8192), EngineKind::Fft);
    }

    #[test]
    fn auto_matches_reference_and_counts_picks() {
        let auto = AutoCorrelator::with_default_model();
        let x = rles(3, vec![1.0, 1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 3.0, 0.0, 1.0]);
        let y = rles(
            0,
            vec![
                5.0, 0.0, 0.0, 1.0, 1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 3.0, 0.0, 1.0,
            ],
        );
        let reference = DenseCorrelator.correlate(&x, &y, 9);
        let got = auto.correlate(&x, &y, 9);
        assert!(reference.max_abs_diff(&got) < 1e-9);
        assert_eq!(auto.pick_counts().iter().sum::<u64>(), 1);
        // correlate_into goes through the same selection.
        let mut out = CorrSeries::zeros(0);
        auto.correlate_into(&x, &y, 9, &mut out, &mut CorrArena::new());
        assert!(reference.max_abs_diff(&out) < 1e-9);
        assert_eq!(auto.pick_counts().iter().sum::<u64>(), 2);
    }

    #[test]
    fn calibration_yields_positive_finite_constants() {
        let m = CostModel::calibrate();
        for c in [m.dense_op_ns, m.sparse_op_ns, m.rle_op_ns, m.fft_op_ns] {
            assert!(c.is_finite() && c > 0.0, "bad calibrated constant {c}");
        }
    }

    #[test]
    fn fanout_shared_cost_undercuts_per_pair_fft() {
        // Amortizing F[x] must always beat k independent FFT runs.
        let m = CostModel::default();
        let x = dense_sig(4096);
        let ys: Vec<RleSeries> = (0..6).map(|_| dense_sig(4096)).collect();
        let refs: Vec<&RleSeries> = ys.iter().collect();
        let shared = m.predict_fanout_fft(&x, &refs);
        let per_pair_fft: f64 = refs
            .iter()
            .map(|y| m.fft_op_ns * super::fft_ops(&x, y, 4096))
            .sum();
        assert!(shared < per_pair_fft);
    }

    #[test]
    fn fanout_picks_shared_fft_for_dense_wide_lag_batches() {
        let auto = AutoCorrelator::with_default_model();
        let x = dense_sig(8192);
        let ys: Vec<RleSeries> = (0..4).map(|_| dense_sig(8192)).collect();
        let refs: Vec<&RleSeries> = ys.iter().collect();
        let out = auto.correlate_fanout(&x, &refs, 8192);
        assert_eq!(out.len(), 4);
        // All four pairs were served by the FFT engine in one batch.
        let fft_idx = EngineKind::ALL
            .iter()
            .position(|&k| k == EngineKind::Fft)
            .unwrap();
        assert_eq!(auto.pick_counts()[fft_idx], 4);
        // And the values agree with the reference engine.
        for (y, got) in ys.iter().zip(&out) {
            let reference = DenseCorrelator.correlate(&x, y, 8192);
            let scale = reference
                .values()
                .iter()
                .fold(1.0f64, |a, &v| a.max(v.abs()));
            assert!(reference.max_abs_diff(got) / scale < 1e-9);
        }
    }

    #[test]
    fn fanout_falls_back_to_per_pair_for_sparse_batches() {
        let auto = AutoCorrelator::with_default_model();
        let x = sparse_sig(4096);
        let ys: Vec<RleSeries> = (0..3).map(|_| sparse_sig(4096)).collect();
        let refs: Vec<&RleSeries> = ys.iter().collect();
        let out = auto.correlate_fanout(&x, &refs, 64);
        assert_eq!(out.len(), 3);
        let fft_idx = EngineKind::ALL
            .iter()
            .position(|&k| k == EngineKind::Fft)
            .unwrap();
        assert_eq!(auto.pick_counts()[fft_idx], 0);
        for (y, got) in ys.iter().zip(&out) {
            let reference = DenseCorrelator.correlate(&x, y, 64);
            assert!(reference.max_abs_diff(got) < 1e-9);
        }
    }

    #[test]
    fn pick_is_deterministic_under_ties() {
        // All-zero costs tie: the first kind in ALL order must win.
        let m = CostModel {
            dense_op_ns: 0.0,
            sparse_op_ns: 0.0,
            rle_op_ns: 0.0,
            fft_op_ns: 0.0,
        };
        let x = dense_sig(64);
        assert_eq!(m.pick(&x, &x, 8), EngineKind::ALL[0]);
    }
}
