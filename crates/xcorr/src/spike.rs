//! Spike detection in correlation series (paper Section 3.3).
//!
//! "Spikes in the cross-correlation series are detected by finding points
//! that are local maxima and exceed a threshold (mean + 3 × Std.Dev.). In
//! traces with some noise, there may exist spikes that are very close to
//! each other. To address this issue, we define a resolution threshold
//! window that chooses only the tallest spike in a particular window."

use serde::{Deserialize, Serialize};

/// A detected correlation spike: a causal-delay candidate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spike {
    /// The lag (in ticks) at which the spike occurs — the inferred delay.
    pub lag: u64,
    /// The correlation value at the spike.
    pub value: f64,
}

/// Configurable spike detector.
///
/// # Example
///
/// ```
/// use e2eprof_xcorr::SpikeDetector;
/// let mut corr = vec![0.1f64; 100];
/// corr[40] = 5.0;
/// corr[41] = 4.9; // shoulder of the same spike
/// corr[70] = 4.0;
/// let spikes = SpikeDetector::new(3.0, 5).detect(&corr);
/// let lags: Vec<u64> = spikes.iter().map(|s| s.lag).collect();
/// assert_eq!(lags, vec![40, 70]); // 41 suppressed by the resolution window
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpikeDetector {
    /// Threshold in standard deviations above the mean (paper: 3.0).
    threshold_sigma: f64,
    /// Resolution window in ticks: of spikes closer than this, only the
    /// tallest survives.
    resolution: u64,
}

impl Default for SpikeDetector {
    /// The paper's configuration: `mean + 3σ`, resolution window of 1 tick
    /// (no merging).
    fn default() -> Self {
        SpikeDetector::new(3.0, 1)
    }
}

impl SpikeDetector {
    /// Creates a detector with the given sigma threshold and resolution
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if `threshold_sigma` is negative or non-finite.
    pub fn new(threshold_sigma: f64, resolution: u64) -> Self {
        assert!(
            threshold_sigma.is_finite() && threshold_sigma >= 0.0,
            "threshold must be a non-negative finite number"
        );
        SpikeDetector {
            threshold_sigma,
            resolution: resolution.max(1),
        }
    }

    /// The sigma threshold.
    pub fn threshold_sigma(&self) -> f64 {
        self.threshold_sigma
    }

    /// The resolution window in ticks.
    pub fn resolution(&self) -> u64 {
        self.resolution
    }

    /// Detects spikes in a correlation series, returned in increasing lag
    /// order.
    ///
    /// A point qualifies if it is a local maximum (≥ both neighbors) and
    /// strictly exceeds `mean + threshold_sigma · std_dev` of the whole
    /// series. Nearby qualifiers are thinned to the tallest within the
    /// resolution window (ties broken toward the smaller lag).
    pub fn detect(&self, corr: &[f64]) -> Vec<Spike> {
        if corr.is_empty() {
            return Vec::new();
        }
        let n = corr.len() as f64;
        let mean = corr.iter().sum::<f64>() / n;
        let var = (corr.iter().map(|v| v * v).sum::<f64>() / n - mean * mean).max(0.0);
        let threshold = mean + self.threshold_sigma * var.sqrt();

        let mut candidates: Vec<Spike> = Vec::new();
        for (i, &v) in corr.iter().enumerate() {
            if v <= threshold {
                continue;
            }
            let left_ok = i == 0 || corr[i - 1] <= v;
            let right_ok = i + 1 == corr.len() || corr[i + 1] <= v;
            if left_ok && right_ok {
                candidates.push(Spike {
                    lag: i as u64,
                    value: v,
                });
            }
        }

        // Non-maximum suppression within the resolution window: strongest
        // first, ties toward the smaller lag for determinism.
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by(|&a, &b| {
            candidates[b]
                .value
                .partial_cmp(&candidates[a].value)
                .expect("non-finite correlation value")
                .then(candidates[a].lag.cmp(&candidates[b].lag))
        });
        let mut accepted: Vec<Spike> = Vec::new();
        for idx in order {
            let c = candidates[idx];
            if accepted
                .iter()
                .all(|s| s.lag.abs_diff(c.lag) >= self.resolution)
            {
                accepted.push(c);
            }
        }
        accepted.sort_by_key(|s| s.lag);
        accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_series_has_no_spikes() {
        let d = SpikeDetector::default();
        assert!(d.detect(&[1.0; 50]).is_empty());
        assert!(d.detect(&[0.0; 50]).is_empty());
        assert!(d.detect(&[]).is_empty());
    }

    #[test]
    fn single_clear_spike() {
        let mut c = vec![0.0; 100];
        c[37] = 10.0;
        let spikes = SpikeDetector::default().detect(&c);
        assert_eq!(spikes.len(), 1);
        assert_eq!(spikes[0].lag, 37);
        assert_eq!(spikes[0].value, 10.0);
    }

    #[test]
    fn spike_at_boundary_detected() {
        let mut c = vec![0.0; 50];
        c[0] = 8.0;
        let spikes = SpikeDetector::default().detect(&c);
        assert_eq!(spikes[0].lag, 0);
        let mut c = vec![0.0; 50];
        c[49] = 8.0;
        let spikes = SpikeDetector::default().detect(&c);
        assert_eq!(spikes[0].lag, 49);
    }

    #[test]
    fn sub_threshold_bumps_ignored() {
        // Noisy series with modest variance: a bump below mean+3σ is noise.
        let mut c: Vec<f64> = (0..200).map(|i| ((i * 7) % 13) as f64).collect();
        let mean = c.iter().sum::<f64>() / 200.0;
        let var = c.iter().map(|v| v * v).sum::<f64>() / 200.0 - mean * mean;
        let just_below = mean + 2.5 * var.sqrt();
        c[100] = just_below;
        // Flatten neighbors so c[100] is a local max but under threshold.
        c[99] = 0.0;
        c[101] = 0.0;
        let spikes = SpikeDetector::new(3.0, 1).detect(&c);
        assert!(spikes.iter().all(|s| s.lag != 100));
    }

    #[test]
    fn resolution_window_keeps_tallest() {
        let mut c = vec![0.0; 100];
        c[50] = 9.0;
        c[52] = 10.0;
        c[54] = 8.0;
        c[80] = 7.0;
        let spikes = SpikeDetector::new(3.0, 5).detect(&c);
        let lags: Vec<u64> = spikes.iter().map(|s| s.lag).collect();
        assert_eq!(lags, vec![52, 80]);
    }

    #[test]
    fn resolution_one_keeps_all_locals() {
        let mut c = vec![0.0; 100];
        c[50] = 9.0;
        c[52] = 10.0;
        let spikes = SpikeDetector::new(3.0, 1).detect(&c);
        assert_eq!(spikes.len(), 2);
    }

    #[test]
    fn plateau_counts_once_per_local_max_rule() {
        // Equal neighbors: both plateau points are >= neighbors, NMS with
        // resolution keeps one.
        let mut c = vec![0.0; 50];
        c[20] = 5.0;
        c[21] = 5.0;
        let spikes = SpikeDetector::new(3.0, 3).detect(&c);
        assert_eq!(spikes.len(), 1);
        assert_eq!(spikes[0].lag, 20); // tie broken toward smaller lag
    }

    #[test]
    fn multiple_well_separated_spikes_all_found() {
        let mut c = vec![0.0; 300];
        for &lag in &[30u64, 120, 250] {
            c[lag as usize] = 20.0;
        }
        let spikes = SpikeDetector::new(3.0, 10).detect(&c);
        let lags: Vec<u64> = spikes.iter().map(|s| s.lag).collect();
        assert_eq!(lags, vec![30, 120, 250]);
    }

    #[test]
    #[should_panic(expected = "non-negative finite")]
    fn negative_threshold_rejected() {
        let _ = SpikeDetector::new(-1.0, 1);
    }
}
