//! Reusable scratch buffers for the correlation engines.
//!
//! Every engine except the native RLE one pays per-call setup allocations:
//! the dense and FFT engines decode both windows to per-tick values, the
//! sparse engine decodes to entry lists, and the FFT engine additionally
//! needs two `O(n)` complex transform buffers. A [`CorrArena`] owns all of
//! those buffers so a caller correlating many pairs — `correlate_batch`,
//! the engine-selection bench, the analyzer's refresh — allocates only
//! until the buffers have grown to the steady-state window size, and not
//! at all afterwards.
//!
//! The arena tracks how often a buffer acquisition fit inside existing
//! capacity ([`ScratchStats`]); tests assert the steady state stops
//! growing, which is the allocation-free-hot-path guarantee without a
//! custom global allocator.

use crate::fft::Complex;
use e2eprof_timeseries::SparseEntry;

/// Scratch-reuse counters: how many buffer acquisitions happened and how
/// many had to grow an allocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Total buffer-set acquisitions (one per engine call through an arena).
    pub acquires: u64,
    /// Acquisitions that had to grow at least one buffer. In steady state
    /// this stays constant while `acquires` keeps rising.
    pub grows: u64,
}

/// Owns every engine's scratch memory; create once, pass to
/// [`Correlator::correlate_into`](crate::engine::Correlator::correlate_into)
/// for each pair.
#[derive(Debug, Default)]
pub struct CorrArena {
    pub(crate) dense_x: Vec<f64>,
    pub(crate) dense_y: Vec<f64>,
    pub(crate) entries_x: Vec<SparseEntry>,
    pub(crate) entries_y: Vec<SparseEntry>,
    pub(crate) fft_x: Vec<Complex>,
    pub(crate) fft_y: Vec<Complex>,
    pub(crate) rle_scratch: Vec<f64>,
    stats: ScratchStats,
}

impl CorrArena {
    /// Creates an empty arena; buffers grow on first use.
    pub fn new() -> Self {
        CorrArena::default()
    }

    /// The scratch-reuse counters accumulated so far.
    pub fn stats(&self) -> ScratchStats {
        self.stats
    }

    /// Resets the counters (not the buffers), e.g. after a warm-up phase.
    pub fn reset_stats(&mut self) {
        self.stats = ScratchStats::default();
    }

    /// Records one engine call through the arena; `fit` says whether every
    /// buffer the call needed already had enough capacity.
    pub(crate) fn note_acquire(&mut self, fit: bool) {
        self.stats.acquires += 1;
        if !fit {
            self.stats.grows += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_track_growth() {
        let mut a = CorrArena::new();
        a.note_acquire(false);
        a.note_acquire(true);
        a.note_acquire(true);
        assert_eq!(
            a.stats(),
            ScratchStats {
                acquires: 3,
                grows: 1
            }
        );
        a.reset_stats();
        assert_eq!(a.stats(), ScratchStats::default());
    }
}
