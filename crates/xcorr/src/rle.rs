//! Bounded-lag correlation directly on run-length-encoded signals.
//!
//! The paper's key observation (Section 3.5): "the correlation of
//! overlapping sequences in the series can be computed in a single step."
//! The contribution of a pair of runs `(s_x, l_x, v_x)` and `(s_y, l_y,
//! v_y)` to `r(d)` is `v_x · v_y · overlap(d)`, where `overlap(d)` is the
//! cross-correlation of two boxcars — a trapezoid in `d`. A trapezoid's
//! *second difference* is just four impulses, so each run pair costs O(1):
//! four updates to a second-difference accumulator, resolved by a double
//! prefix sum at the end. Total cost `O(runs_x · runs_y(within lag bound) +
//! T_u/τ)` — the `k·r` speedup factor of the paper's complexity analysis.

use crate::corr::CorrSeries;
use e2eprof_timeseries::RleSeries;

/// Computes `r(d) = Σ_t x(t) · y(t + d)` for `d ∈ [0, max_lag)` from RLE
/// signals, processing each overlapping run pair in constant time.
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::{DenseSeries, Tick};
/// use e2eprof_xcorr::rle;
/// let x = DenseSeries::new(Tick::new(0), vec![1.0, 1.0, 1.0]).to_sparse().to_rle();
/// let y = DenseSeries::new(Tick::new(0), vec![0.0, 2.0, 2.0, 2.0]).to_sparse().to_rle();
/// let r = rle::correlate(&x, &y, 3);
/// // Trapezoid: overlap of the 3-run and the shifted 3-run, scaled by 2.
/// assert_eq!(r.values(), &[4.0, 6.0, 4.0]);
/// ```
pub fn correlate(x: &RleSeries, y: &RleSeries, max_lag: u64) -> CorrSeries {
    let mut out = CorrSeries::zeros(0);
    let mut scratch = Vec::new();
    correlate_into(x, y, max_lag, &mut out, &mut scratch);
    out
}

/// [`correlate`] writing into caller-owned buffers: `out` receives the
/// lagged products and `scratch` holds the second-difference accumulator.
///
/// Both buffers are resized and zeroed as needed, so any prior contents
/// are irrelevant — passing the same buffers across calls (as
/// [`IncrementalCorrelator`](crate::incremental::IncrementalCorrelator)
/// does every append/evict) reuses their allocations instead of paying
/// two `O(max_lag)` heap round-trips per invocation. The computed values
/// are bit-identical to [`correlate`]'s.
pub fn correlate_into(
    x: &RleSeries,
    y: &RleSeries,
    max_lag: u64,
    out: &mut CorrSeries,
    scratch: &mut Vec<f64>,
) {
    out.reset(max_lag);
    let l = max_lag as i64;
    if l == 0 {
        return;
    }
    // Second-difference accumulator over lags [0, L), with two extra slots
    // so events at p = L and p = L+1 (which cannot affect d < L) need no
    // special-casing when they land exactly on the boundary.
    scratch.clear();
    scratch.resize(max_lag as usize + 2, 0.0);
    let diff2 = scratch;
    // Events at negative positions fold into a linear + constant term:
    // an impulse e at p < 0 contributes e·(d − p + 1) = e·(d+1) + e·(−p)
    // to every lag d ≥ 0.
    let mut lin = 0.0f64;
    let mut cst = 0.0f64;

    let yr = y.runs();
    let mut lo = 0usize;
    for rx in x.runs() {
        let sx = rx.start().index() as i64;
        let lx = rx.len() as i64;
        let vx = rx.value();
        // Skip y runs that end at or before this x run's start: they can
        // only produce negative lags. Run ends are increasing, and sx is
        // increasing across x runs, so this pointer is monotone.
        while lo < yr.len() && (yr[lo].end().index() as i64) <= sx {
            lo += 1;
        }
        for ry in &yr[lo..] {
            let sy = ry.start().index() as i64;
            if sy >= sx + lx + l - 1 {
                // Minimum lag of this pair is already ≥ L.
                break;
            }
            let ly = ry.len() as i64;
            let w = vx * ry.value();
            // Boxcar cross-correlation trapezoid: second difference is
            // +w at p1, −w at p1+lx, −w at p1+ly, +w at p1+lx+ly,
            // where p1 = (sy − sx) − (lx − 1) is the smallest lag with
            // non-zero overlap.
            let p1 = sy - sx - (lx - 1);
            for (p, e) in [(p1, w), (p1 + lx, -w), (p1 + ly, -w), (p1 + lx + ly, w)] {
                if p >= l {
                    continue;
                }
                if p < 0 {
                    lin += e;
                    cst += e * (-p) as f64;
                } else {
                    diff2[p as usize] += e;
                }
            }
        }
    }

    // Resolve: double prefix sum plus the folded linear/constant terms.
    let mut slope = 0.0f64;
    let mut value = 0.0f64;
    for (d, slot) in out.values_mut().iter_mut().enumerate() {
        slope += diff2[d];
        value += slope;
        *slot = value + lin * (d as f64 + 1.0) + cst;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;
    use e2eprof_timeseries::{DenseSeries, Tick};

    fn ds(start: u64, v: Vec<f64>) -> DenseSeries {
        DenseSeries::new(Tick::new(start), v)
    }

    fn check_against_dense(x: &DenseSeries, y: &DenseSeries, max_lag: u64) {
        let expect = dense::correlate(x, y, max_lag);
        let got = correlate(&x.to_sparse().to_rle(), &y.to_sparse().to_rle(), max_lag);
        assert!(
            expect.max_abs_diff(&got) < 1e-9,
            "expect {:?} got {:?}",
            expect.values(),
            got.values()
        );
    }

    #[test]
    fn single_run_pair_trapezoid() {
        check_against_dense(
            &ds(0, vec![1.0, 1.0, 1.0, 0.0]),
            &ds(0, vec![0.0, 2.0, 2.0, 2.0, 2.0, 0.0]),
            6,
        );
    }

    #[test]
    fn y_activity_before_x_gives_negative_lags_only() {
        check_against_dense(&ds(10, vec![1.0, 1.0]), &ds(0, vec![3.0, 3.0, 3.0]), 5);
    }

    #[test]
    fn runs_straddling_lag_bound() {
        // Pair whose trapezoid extends beyond L: must be truncated exactly.
        check_against_dense(
            &ds(0, vec![1.0, 1.0, 1.0, 1.0, 1.0]),
            &ds(3, vec![2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0]),
            4,
        );
    }

    #[test]
    fn trapezoid_partially_negative() {
        // x run later than y run: part of the trapezoid sits at d < 0.
        check_against_dense(
            &ds(5, vec![1.0, 1.0, 1.0]),
            &ds(3, vec![2.0, 2.0, 2.0, 2.0, 2.0]),
            6,
        );
    }

    #[test]
    fn mixed_values_and_gaps() {
        check_against_dense(
            &ds(0, vec![1.0, 1.0, 0.0, 3.0, 0.0, 0.0, 2.0, 2.0, 2.0, 0.0]),
            &ds(2, vec![0.0, 5.0, 5.0, 0.0, 1.0, 0.0, 2.0, 2.0]),
            12,
        );
    }

    #[test]
    fn empty_inputs() {
        let e = RleSeries::empty(Tick::new(0), 50);
        let r = correlate(&e, &e, 8);
        assert!(r.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_lag_bound() {
        let x = ds(0, vec![1.0]).to_sparse().to_rle();
        assert_eq!(correlate(&x, &x, 0).max_lag(), 0);
    }
}
