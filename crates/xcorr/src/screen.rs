//! Coarse-to-fine candidate screening: prune provably-dead edges from a
//! decimated correlation before paying the full-lag cost.
//!
//! Density signals are non-negative (√count amplitudes), which makes the
//! decimated correlation a *sound upper-bound cover* of the fine one. Let
//! `X(J) = Σ_{t∈[Jk,(J+1)k)} x(t)` and `Y` likewise, and let
//! `R(D) = Σ_J X(J)·Y(J+D)` be the coarse raw correlation. Every fine
//! product `x(t)·y(t+d)` with `t = Jk + a`, `a ∈ [0, k)`, lands in coarse
//! block offset `⌊(a+d)/k⌋ ∈ {⌊d/k⌋, ⌊d/k⌋+1}`, and every term of `R` is
//! a sum of non-negative fine products — so
//!
//! ```text
//! r_fine(d)  ≤  R(⌊d/k⌋) + R(⌊d/k⌋ + 1)      for all d ∈ [0, L)
//! ```
//!
//! ([`cover_bound`]). Feeding that through Eq. 1's normalization with the
//! *exact* per-lag window sums of `y` (cheap: `O(runs + L)`) yields an
//! upper bound on every normalized coefficient ρ(d) ([`max_rho_bound`]).
//! Spikes are only accepted when their ρ value reaches the detection
//! floor (`PathmapConfig::min_spike_value`), so an edge whose bound sits
//! below the floor provably cannot produce a distinguishable spike —
//! skipping it cannot change the discovered graph. [`Screen`] wraps the
//! decision with promote/demote hysteresis for the online analyzer.

use crate::corr::CorrSeries;
use crate::normalize::{RlePrefix, EPS_ENERGY};
use e2eprof_timeseries::RleSeries;

/// Absolute safety margin added to every screening bound before it is
/// compared against a threshold, absorbing the float drift of incremental
/// coarse accumulators (append/evict corrections reassociate the sum, a
/// ~1 ulp-per-operation effect many orders of magnitude below this).
pub const BOUND_MARGIN: f64 = 1e-9;

/// Number of coarse lags needed to cover every fine lag `d < max_lag`:
/// the cover reads coarse lags `⌊d/k⌋` and `⌊d/k⌋ + 1`, so the coarse
/// correlation must extend to `⌊(max_lag−1)/k⌋ + 2` lags.
pub fn coarse_lag_bound(max_lag: u64, k: u64) -> u64 {
    assert!(k > 0, "decimation factor must be positive");
    if max_lag == 0 {
        0
    } else {
        (max_lag - 1) / k + 2
    }
}

/// The raw cover bound at fine lag `d`: `R(⌊d/k⌋) + R(⌊d/k⌋+1)`.
///
/// For non-negative signals whose decimations produced `coarse`, this is
/// ≥ the fine raw correlation `r(d)` (see the module docs for the proof).
pub fn cover_bound(coarse: &CorrSeries, k: u64, d: u64) -> f64 {
    coarse.value_at(d / k) + coarse.value_at(d / k + 1)
}

/// Upper-bounds `max_d ρ(d)` over `d ∈ [0, max_lag)` from the coarse raw
/// correlation, without ever computing the fine correlation.
///
/// `x` is the fine source window and `y` the fine target signal — the
/// same inputs [`normalize`](crate::normalize::normalize) would receive —
/// used only for their exact (and cheap) window statistics: with
/// `S(d) = Σ y(t+d)` and `Ey(d)` the centered energy of `y`'s lag-`d`
/// window, each per-lag Pearson numerator `r(d) − x̄·S(d)` is bounded by
/// `cover_bound(d) + slack − x̄·S(d)` and divided by the exact
/// denominator. `slack` is raw-product mass the coarse correlation does
/// not cover (the not-yet-folded decimation tail in the online analyzer);
/// pass `0.0` when the decimations span the full signals.
///
/// Lags whose denominator is degenerate contribute 0, matching
/// `normalize`'s convention that a constant window correlates to 0.
/// The result is ≥ 0 and ≥ every ρ(d); it is *not* clamped to 1.
pub fn max_rho_bound(
    coarse: &CorrSeries,
    k: u64,
    x: &RleSeries,
    y: &RleSeries,
    max_lag: u64,
    slack: f64,
) -> f64 {
    max_rho_bound_until(coarse, k, x, y, max_lag, slack, f64::INFINITY)
}

/// Like [`max_rho_bound`], but stops scanning as soon as the running
/// maximum reaches `stop_at`.
///
/// Any decision of the form `bound ≥ threshold` with `threshold ≤
/// stop_at` is unchanged: when the result is below `stop_at` it is the
/// exact bound, and otherwise it is a certificate `≥ stop_at` (which the
/// full bound, being ≥ the partial maximum, also clears). Causally live
/// pairs exit after a handful of lags instead of paying the full
/// `max_lag` scan — that scan would otherwise cost as much as the fine
/// correlation screening is trying to avoid.
pub fn max_rho_bound_until(
    coarse: &CorrSeries,
    k: u64,
    x: &RleSeries,
    y: &RleSeries,
    max_lag: u64,
    slack: f64,
    stop_at: f64,
) -> f64 {
    assert!(k > 0, "decimation factor must be positive");
    let n = x.len() as f64;
    if n == 0.0 || max_lag == 0 {
        return 0.0;
    }
    let xs = x.stats();
    let x_mean = xs.mean();
    let ex = xs.centered_energy();
    if ex <= EPS_ENERGY {
        // Constant source window: every ρ(d) is defined as 0.
        return 0.0;
    }
    let prefix = RlePrefix::new(y);
    let mut best = 0.0f64;
    let mut d = 0u64;
    while d < max_lag {
        let bucket = d / k;
        let bucket_end = ((bucket + 1) * k).min(max_lag);
        // The raw bound is constant across the bucket's k fine lags; a
        // zero bucket (no coarse overlap at all — the common case for a
        // causally dead edge) is skipped without touching the prefix.
        let b = coarse.value_at(bucket) + coarse.value_at(bucket + 1) + slack;
        if b <= 0.0 {
            d = bucket_end;
            continue;
        }
        while d < bucket_end {
            let lo = x.start() + d;
            let hi = x.end() + d;
            let (s_lo, q_lo) = prefix.eval(lo);
            let (s_hi, q_hi) = prefix.eval(hi);
            let s = s_hi - s_lo;
            let q = q_hi - q_lo;
            let ey = (q - s * s / n).max(0.0);
            let den = (ex * ey).sqrt();
            if den > EPS_ENERGY {
                let num = b - x_mean * s;
                if num > 0.0 && num / den > best {
                    best = num / den;
                    if best >= stop_at {
                        return best;
                    }
                }
            }
            d += 1;
        }
    }
    best
}

/// Whether two non-negative coarse signals overlap at *any* coarse lag
/// `D ∈ [0, coarse_lags)` — the promote trigger of the edge-side data
/// reduction loop.
///
/// A demoted edge ships only its decimated image, so the analyzer cannot
/// evaluate the full [`max_rho_bound`]; what it *can* certify is the
/// converse: by the cover lemma (module docs), zero coarse overlap over
/// `coarse_lag_bound(max_lag, k)` lags means every fine raw product
/// `x(t)·y(t+d)`, `d < max_lag`, is zero — the pair provably cannot
/// correlate, at any normalization. Any overlap is therefore the *only*
/// event that could make a demoted edge causally live again, and firing
/// on it (then backfilling fine data and re-running the exact screen)
/// can never leave a true edge demoted. Scale does not matter here, so
/// the two signals may use different amplitude conventions (the analyzer
/// compares a `Σ √count` decimation of the client signal against the
/// tracer's `√(block count)` coarse image).
///
/// Runs are scanned with two pointers in `O(runs(x) + runs(y))`.
pub fn coarse_overlap(x: &RleSeries, y: &RleSeries, coarse_lags: u64) -> bool {
    if coarse_lags == 0 {
        return false;
    }
    let xr = x.runs();
    let yr = y.runs();
    let mut i = 0usize;
    for ry in yr {
        // Drop source runs that end too early to reach this (or any
        // later) target run at an admissible lag: t + D spans
        // [rx.start, rx.end + coarse_lags - 1).
        while i < xr.len() && xr[i].end().index() + coarse_lags - 1 <= ry.start().index() {
            i += 1;
        }
        if i < xr.len() && xr[i].start() < ry.end() {
            return true;
        }
    }
    false
}

/// The screening decision rule: a spike floor with promote/demote
/// hysteresis.
///
/// A pair is *active* (owns a full-resolution correlator) or *pruned*.
/// Promotion requires the bound to reach `floor·(1−h)` and demotion
/// requires it to fall below `floor·(1−h)²`, so a pair oscillating near
/// the floor does not thrash between full recomputes. Both thresholds
/// sit strictly below `floor` (for `h ∈ [0, 1)`), so a pruned pair always
/// has `bound < floor` — pruning can never suppress an acceptable spike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Screen {
    factor: u64,
    floor: f64,
    hysteresis: f64,
}

impl Screen {
    /// Creates a screen for decimation factor `k` against a spike-value
    /// `floor` with hysteresis margin `h`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero, `floor` is not positive, or `h` is
    /// outside `[0, 1)`.
    pub fn new(factor: u64, floor: f64, hysteresis: f64) -> Self {
        assert!(factor > 0, "decimation factor must be positive");
        assert!(floor > 0.0, "spike floor must be positive");
        assert!(
            (0.0..1.0).contains(&hysteresis),
            "hysteresis must be in [0, 1)"
        );
        Screen {
            factor,
            floor,
            hysteresis,
        }
    }

    /// The decimation factor `k`.
    pub fn factor(&self) -> u64 {
        self.factor
    }

    /// Bound level at which a pruned pair is promoted back to full
    /// resolution: `floor·(1−h)`.
    pub fn promote_threshold(&self) -> f64 {
        self.floor * (1.0 - self.hysteresis)
    }

    /// Bound level below which an active pair is demoted (its fine
    /// correlator dropped): `floor·(1−h)²`.
    pub fn demote_threshold(&self) -> f64 {
        self.promote_threshold() * (1.0 - self.hysteresis)
    }

    /// The bound level that decides [`next_active`](Screen::next_active)
    /// for a pair in state `currently_active`: the demote threshold for
    /// active pairs, the promote threshold for pruned ones. Pass this
    /// (less [`BOUND_MARGIN`]) as `stop_at` to
    /// [`max_rho_bound_until`] to let
    /// live pairs exit the bound scan early without changing any
    /// decision.
    pub fn decision_threshold(&self, currently_active: bool) -> f64 {
        if currently_active {
            self.demote_threshold()
        } else {
            self.promote_threshold()
        }
    }

    /// Applies the hysteresis rule: given a pair's current activity and
    /// its fresh `max_rho_bound`, decides whether it is active for the
    /// upcoming refresh. [`BOUND_MARGIN`] is added on the bound's side,
    /// so float drift can only keep pairs active, never over-prune.
    pub fn next_active(&self, bound: f64, currently_active: bool) -> bool {
        let b = bound + BOUND_MARGIN;
        if currently_active {
            b >= self.demote_threshold()
        } else {
            b >= self.promote_threshold()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{normalize, rle};
    use e2eprof_timeseries::{DenseSeries, Tick};

    fn rles(start: u64, v: Vec<f64>) -> RleSeries {
        DenseSeries::new(Tick::new(start), v).to_sparse().to_rle()
    }

    fn pseudo_signal(len: u64, seed: u64, density: u64) -> RleSeries {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let v: Vec<f64> = (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state.is_multiple_of(density) {
                    (1.0 + (state % 4) as f64).sqrt()
                } else {
                    0.0
                }
            })
            .collect();
        rles(0, v)
    }

    fn coarse_of(x: &RleSeries, y: &RleSeries, k: u64, max_lag: u64) -> CorrSeries {
        rle::correlate(&x.decimate(k), &y.decimate(k), coarse_lag_bound(max_lag, k))
    }

    #[test]
    fn cover_bound_dominates_fine_correlation() {
        let max_lag = 40;
        for (sx, sy) in [(1, 2), (3, 4), (5, 6)] {
            let x = pseudo_signal(150, sx, 3);
            let y = pseudo_signal(200, sy, 4);
            let fine = rle::correlate(&x, &y, max_lag);
            for k in [2, 4, 8, 16] {
                let coarse = coarse_of(&x, &y, k, max_lag);
                for d in 0..max_lag {
                    let bound = cover_bound(&coarse, k, d);
                    assert!(
                        fine.value_at(d) <= bound + 1e-9,
                        "k={k} d={d}: fine {} > bound {bound}",
                        fine.value_at(d)
                    );
                }
            }
        }
    }

    #[test]
    fn rho_bound_dominates_normalized_coefficients() {
        let max_lag = 40;
        for (sx, sy) in [(7, 8), (9, 10)] {
            let x = pseudo_signal(150, sx, 2);
            let y = pseudo_signal(200, sy, 3);
            let rho = normalize::normalize(&rle::correlate(&x, &y, max_lag), &x, &y);
            for k in [2, 4, 8, 16] {
                let coarse = coarse_of(&x, &y, k, max_lag);
                let bound = max_rho_bound(&coarse, k, &x, &y, max_lag, 0.0);
                for d in 0..max_lag {
                    assert!(
                        rho.value_at(d) <= bound + 1e-9,
                        "k={k} d={d}: rho {} > bound {bound}",
                        rho.value_at(d)
                    );
                }
            }
        }
    }

    #[test]
    fn dead_pair_bounds_to_zero() {
        // Disjoint activity beyond the lag bound: coarse overlap is zero,
        // so the bound collapses without scanning fine lags.
        let x = rles(0, vec![1.0, 1.0, 2.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        let mut yv = vec![0.0; 64];
        yv[60] = 3.0;
        let y = rles(0, yv);
        let max_lag = 16;
        let k = 4;
        let coarse = coarse_of(&x, &y, k, max_lag);
        assert_eq!(max_rho_bound(&coarse, k, &x, &y, max_lag, 0.0), 0.0);
    }

    #[test]
    fn coarse_lag_bound_covers_every_fine_lag() {
        for max_lag in [1u64, 7, 16, 100] {
            for k in [2u64, 4, 8, 16] {
                let lc = coarse_lag_bound(max_lag, k);
                // The cover of the last fine lag reads coarse lag
                // ⌊(L−1)/k⌋ + 1, which must be < Lc.
                assert!((max_lag - 1) / k + 1 < lc, "L={max_lag} k={k}");
            }
        }
        assert_eq!(coarse_lag_bound(0, 4), 0);
    }

    #[test]
    fn coarse_overlap_matches_admissible_lag_windows() {
        // y active only at tick 10: reachable from x's run [2, 5) only
        // when the lag horizon extends past 10 − 4 = 6.
        let x = rles(0, {
            let mut v = vec![0.0; 16];
            v[2] = 1.0;
            v[3] = 1.0;
            v[4] = 2.0;
            v
        });
        let y = rles(0, {
            let mut v = vec![0.0; 16];
            v[10] = 3.0;
            v
        });
        assert!(!coarse_overlap(&x, &y, 0));
        assert!(!coarse_overlap(&x, &y, 6)); // t + D ≤ 4 + 5 = 9 < 10
        assert!(coarse_overlap(&x, &y, 7)); // t = 4, D = 6 reaches 10
                                            // Anti-causal activity (target strictly before the source) never
                                            // triggers: lags are non-negative, however long the horizon.
        assert!(!coarse_overlap(&y, &x, 4));
        assert!(!coarse_overlap(&y, &x, 100));
        // Coincident activity triggers at any positive horizon.
        assert!(coarse_overlap(&x, &x, 1));
    }

    #[test]
    fn zero_coarse_overlap_certifies_zero_rho_bound() {
        // Consistency with the cover lemma: whenever the decimations do
        // not overlap within the coarse lag horizon, the full screening
        // bound is exactly zero.
        let max_lag = 24;
        for (sx, sy) in [(11, 12), (13, 14), (15, 16)] {
            let x = pseudo_signal(120, sx, 5);
            let y = pseudo_signal(160, sy, 7);
            for k in [2u64, 4, 8] {
                let lc = coarse_lag_bound(max_lag, k);
                let xc = x.decimate(k);
                let yc = y.decimate(k);
                if !coarse_overlap(&xc, &yc, lc) {
                    let coarse = coarse_of(&x, &y, k, max_lag);
                    assert_eq!(max_rho_bound(&coarse, k, &x, &y, max_lag, 0.0), 0.0);
                }
            }
        }
    }

    #[test]
    fn hysteresis_thresholds_sit_below_the_floor() {
        let s = Screen::new(8, 0.1, 0.5);
        assert!(s.promote_threshold() < 0.1);
        assert!(s.demote_threshold() < s.promote_threshold());
        // Active pair near the floor stays active; far below, demoted.
        assert!(s.next_active(0.04, true));
        assert!(!s.next_active(0.01, true));
        // Pruned pair needs the higher threshold to come back.
        assert!(!s.next_active(0.04, false));
        assert!(s.next_active(0.06, false));
    }

    #[test]
    fn zero_hysteresis_uses_the_floor_directly() {
        let s = Screen::new(4, 0.1, 0.0);
        assert_eq!(s.promote_threshold(), 0.1);
        assert_eq!(s.demote_threshold(), 0.1);
        assert!(s.next_active(0.1, false));
        assert!(!s.next_active(0.09, false));
    }
}
