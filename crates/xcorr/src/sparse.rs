//! Bounded-lag correlation on zero-suppressed signals ("burst compression").
//!
//! Enterprise traffic is bursty: long quiet zones contribute nothing to
//! `r(d) = Σ x(t) y(t+d)`, so the sum only needs the non-zero entries. For a
//! compression factor `k` (fraction of ticks that are quiet), the cost drops
//! from `O((W/τ)(T_u/τ))` to `O(((W/τ)/k)(T_u/τ))` — the paper's third
//! optimization.

use crate::corr::CorrSeries;
use e2eprof_timeseries::{SparseEntry, SparseSeries};

/// Computes `r(d) = Σ_t x(t) · y(t + d)` for `d ∈ [0, max_lag)` from sparse
/// signals, skipping quiet zones entirely.
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::{DenseSeries, Tick};
/// use e2eprof_xcorr::sparse;
/// let x = DenseSeries::new(Tick::new(0), vec![1.0, 0.0, 2.0]).to_sparse();
/// let y = DenseSeries::new(Tick::new(0), vec![0.0, 1.0, 0.0, 2.0]).to_sparse();
/// let r = sparse::correlate(&x, &y, 2);
/// assert_eq!(r.values(), &[0.0, 5.0]);
/// ```
pub fn correlate(x: &SparseSeries, y: &SparseSeries, max_lag: u64) -> CorrSeries {
    let mut out = CorrSeries::zeros(0);
    correlate_entries_into(x.entries(), y.entries(), max_lag, &mut out);
    out
}

/// Entry-level kernel behind [`correlate`], reusing `out`'s allocation.
/// The arena-backed engine path decodes RLE windows into reusable entry
/// buffers and calls this directly.
pub(crate) fn correlate_entries_into(
    xe: &[SparseEntry],
    ye: &[SparseEntry],
    max_lag: u64,
    out: &mut CorrSeries,
) {
    out.reset(max_lag);
    let o = out.values_mut();
    let mut lo = 0usize;
    for x in xe {
        let t = x.tick().index();
        // First y entry with tick >= t (lag 0). Monotone in t, so `lo` only
        // moves forward across x entries.
        while lo < ye.len() && ye[lo].tick().index() < t {
            lo += 1;
        }
        let mut j = lo;
        while j < ye.len() {
            let d = ye[j].tick().index() - t;
            if d >= max_lag {
                break;
            }
            o[d as usize] += x.value() * ye[j].value();
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;
    use e2eprof_timeseries::{DenseSeries, Tick};

    fn ds(start: u64, v: Vec<f64>) -> DenseSeries {
        DenseSeries::new(Tick::new(start), v)
    }

    #[test]
    fn matches_dense_engine_on_small_signal() {
        let x = ds(0, vec![0.0, 3.0, 0.0, 0.0, 1.0, 1.0, 0.0, 2.0]);
        let y = ds(0, vec![1.0, 0.0, 0.0, 3.0, 0.0, 0.0, 1.0, 1.0, 0.0, 2.0]);
        let d = dense::correlate(&x, &y, 6);
        let s = correlate(&x.to_sparse(), &y.to_sparse(), 6);
        assert!(d.max_abs_diff(&s) < 1e-12);
    }

    #[test]
    fn matches_dense_engine_with_offset_spans() {
        let x = ds(100, vec![1.0, 0.0, 2.0, 0.0, 1.0]);
        let y = ds(97, vec![5.0, 0.0, 0.0, 1.0, 0.0, 2.0, 0.0, 1.0, 4.0]);
        let d = dense::correlate(&x, &y, 8);
        let s = correlate(&x.to_sparse(), &y.to_sparse(), 8);
        assert!(d.max_abs_diff(&s) < 1e-12);
    }

    #[test]
    fn y_entries_before_x_are_skipped() {
        // y has activity before x's first entry: only non-negative lags count.
        let x = ds(10, vec![1.0]);
        let y = ds(
            0,
            vec![9.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 4.0],
        );
        let r = correlate(&x.to_sparse(), &y.to_sparse(), 3);
        assert_eq!(r.values(), &[4.0, 0.0, 0.0]);
    }

    #[test]
    fn empty_signals_yield_zero() {
        let x = SparseSeries::empty(Tick::new(0), 100);
        let y = SparseSeries::empty(Tick::new(0), 100);
        let r = correlate(&x, &y, 10);
        assert!(r.values().iter().all(|&v| v == 0.0));
    }
}
