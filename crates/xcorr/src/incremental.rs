//! Incremental maintenance of lagged products across a sliding window.
//!
//! Because `r(d) = Σ_t x(t) · y(t+d)` is a sum over the source window's
//! ticks, sliding the window is two bounded corrections: *add* the products
//! contributed by the newly appended `ΔW` ticks and *subtract* those of the
//! evicted prefix — `O((ΔW/τ)/(k·r) · T_u/τ)` per refresh instead of
//! recomputing the whole `W` window (paper Sections 3.4 and 3.7, the reason
//! pathmap's per-refresh cost in Fig. 9 is flat in `W`).
//!
//! The correction terms only read `y` up to `T_u` ticks past the affected
//! `x` region, so the analyzer retains `W + T_u` ticks of each target
//! signal and the arithmetic is exact (modulo float summation order).

use crate::corr::CorrSeries;
use crate::rle;
use e2eprof_timeseries::{RleSeries, Tick};

/// Stateful bounded-lag correlator for one (source, target) signal pair.
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::{DenseSeries, Tick};
/// use e2eprof_xcorr::{incremental::IncrementalCorrelator, rle};
///
/// let sig = DenseSeries::new(Tick::new(0), vec![1., 0., 2., 0., 0., 3., 1., 0., 4., 0.]);
/// let x = sig.to_sparse().to_rle();
/// let y = x.clone();
///
/// let mut inc = IncrementalCorrelator::new(4);
/// inc.append(&x.slice(Tick::new(0), Tick::new(6)), &y);
/// inc.append(&x.slice(Tick::new(6), Tick::new(10)), &y);
/// inc.evict_to(Tick::new(3), &x, &y);
///
/// // Window is now [3, 10): identical to a from-scratch computation.
/// let direct = rle::correlate(&x.slice(Tick::new(3), Tick::new(10)), &y, 4);
/// assert!(inc.corr().max_abs_diff(&direct) < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalCorrelator {
    max_lag: u64,
    acc: CorrSeries,
    window: Option<(Tick, Tick)>,
    /// Reused correction-term and second-difference buffers: every
    /// append/evict writes into these instead of allocating `O(max_lag)`
    /// vectors per call.
    delta: CorrSeries,
    scratch: Vec<f64>,
}

impl IncrementalCorrelator {
    /// Creates an empty correlator with the given lag bound (`T_u/τ`).
    pub fn new(max_lag: u64) -> Self {
        IncrementalCorrelator {
            max_lag,
            acc: CorrSeries::zeros(max_lag),
            window: None,
            delta: CorrSeries::zeros(0),
            scratch: Vec::new(),
        }
    }

    /// The lag bound.
    pub fn max_lag(&self) -> u64 {
        self.max_lag
    }

    /// The current source window `[start, end)`, if any data was appended.
    pub fn window(&self) -> Option<(Tick, Tick)> {
        self.window
    }

    /// The accumulated lagged products for the current window.
    pub fn corr(&self) -> &CorrSeries {
        &self.acc
    }

    /// Appends a new chunk of the source signal.
    ///
    /// `y` must contain the target signal's values over at least
    /// `[chunk.start, chunk.end + max_lag)` intersected with its
    /// materialized span (values outside `y`'s span count as zero, exactly
    /// like the stateless engines).
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is not contiguous with the current window.
    pub fn append(&mut self, chunk: &RleSeries, y: &RleSeries) {
        match self.window {
            None => self.window = Some((chunk.start(), chunk.end())),
            Some((s, e)) => {
                assert_eq!(chunk.start(), e, "appended chunk must be contiguous");
                self.window = Some((s, chunk.end()));
            }
        }
        rle::correlate_into(chunk, y, self.max_lag, &mut self.delta, &mut self.scratch);
        self.acc.add_assign(&self.delta);
    }

    /// Evicts the window prefix before `new_start`.
    ///
    /// `x` must cover (at least) the evicted region `[start, new_start)`;
    /// `y` must cover `[start, new_start + max_lag)` intersected with its
    /// materialized span — the same values that were present when the
    /// corresponding `append` ran.
    ///
    /// # Panics
    ///
    /// Panics if no data was appended yet or if `new_start` lies outside
    /// the current window.
    pub fn evict_to(&mut self, new_start: Tick, x: &RleSeries, y: &RleSeries) {
        let (s, e) = self.window.expect("evict on an empty correlator");
        assert!(
            new_start >= s && new_start <= e,
            "eviction point outside current window"
        );
        if new_start == s {
            return;
        }
        let evicted = x.slice(s, new_start);
        rle::correlate_into(
            &evicted,
            y,
            self.max_lag,
            &mut self.delta,
            &mut self.scratch,
        );
        self.acc.sub_assign(&self.delta);
        self.window = Some((new_start, e));
    }

    /// Slides the recorded window to `span` without touching the
    /// accumulator.
    ///
    /// This is the activity-gated skip path (DESIGN.md §6.7): the caller
    /// has *proved* — via retention epochs plus boundary-run checks over
    /// the exact regions the slide adds and evicts — that every correction
    /// term [`append`](Self::append)/[`evict_to`](Self::evict_to) would
    /// compute for this slide is a sum of zero products, so the
    /// accumulated lagged products for the new window are bitwise
    /// identical to the old ones and only the window bookkeeping moves.
    /// Calling this without that proof silently corrupts the accumulator.
    ///
    /// # Panics
    ///
    /// Panics if no data was appended yet or `span` is inverted.
    pub fn slide(&mut self, span: (Tick, Tick)) {
        assert!(self.window.is_some(), "slide on an empty correlator");
        assert!(span.0 <= span.1, "window start must precede end");
        self.window = Some(span);
    }

    /// Installs an externally computed accumulator for the window `span`.
    ///
    /// The batched shared-transform refill path computes a whole client
    /// fan-out of `CorrSeries` in one [`crate::fft::correlate_many`] pass
    /// and seeds each pair's correlator with its slot — equivalent to
    /// [`refill`](Self::refill) when `corr` is what that engine would have
    /// produced over `span`.
    ///
    /// # Panics
    ///
    /// Panics if `span` is inverted or `corr`'s lag bound differs from
    /// this correlator's.
    pub fn install(&mut self, corr: CorrSeries, span: (Tick, Tick)) {
        assert!(span.0 <= span.1, "window start must precede end");
        assert_eq!(
            corr.max_lag(),
            self.max_lag,
            "installed series has the wrong lag bound"
        );
        self.acc = corr;
        self.window = Some(span);
    }

    /// Discards all state, returning to the empty window.
    pub fn reset(&mut self) {
        self.acc = CorrSeries::zeros(self.max_lag);
        self.window = None;
    }

    /// Recomputes the accumulator from scratch over `x`'s full span with an
    /// explicit stateless engine, replacing the current window.
    ///
    /// This is the cold path of the online analyzer: a pair's very first
    /// window (or a window after a reset) has no prior state to correct
    /// incrementally, so any engine — including the auto-selecting one —
    /// can be used for the one-shot full computation. Subsequent appends
    /// and evictions stay on the exact RLE-native corrections.
    pub fn refill(&mut self, engine: &dyn crate::engine::Correlator, x: &RleSeries, y: &RleSeries) {
        self.acc = engine.correlate(x, y, self.max_lag);
        self.window = Some((x.start(), x.end()));
    }
}

// Shards of `(client, edge) -> IncrementalCorrelator` maps are moved onto
// scoped worker threads by the online analyzer; keep the type thread-safe.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<IncrementalCorrelator>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use e2eprof_timeseries::DenseSeries;

    fn rles(start: u64, v: Vec<f64>) -> RleSeries {
        DenseSeries::new(Tick::new(start), v).to_sparse().to_rle()
    }

    fn signal(len: u64, seed: u64) -> RleSeries {
        // Deterministic pseudo-random sparse-ish signal.
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let v: Vec<f64> = (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                match state % 5 {
                    0 => 1.0,
                    1 => 2f64.sqrt(),
                    _ => 0.0,
                }
            })
            .collect();
        rles(0, v)
    }

    #[test]
    fn sliding_matches_recompute() {
        let x = signal(200, 7);
        let y = signal(230, 13);
        let max_lag = 25;
        let mut inc = IncrementalCorrelator::new(max_lag);

        // Slide a 60-tick window in 20-tick steps.
        let mut appended = 0u64;
        for step in 0..8u64 {
            let new_end = (step + 1) * 20 + 40;
            let chunk = x.slice(Tick::new(appended), Tick::new(new_end.min(200)));
            inc.append(&chunk, &y);
            appended = new_end.min(200);
            let new_start = appended.saturating_sub(60);
            inc.evict_to(Tick::new(new_start), &x, &y);

            let direct = rle::correlate(
                &x.slice(Tick::new(new_start), Tick::new(appended)),
                &y,
                max_lag,
            );
            assert!(
                inc.corr().max_abs_diff(&direct) < 1e-9,
                "step {step}: drifted from direct recompute"
            );
        }
    }

    #[test]
    fn first_append_establishes_window() {
        let x = rles(10, vec![1.0, 0.0, 2.0]);
        let mut inc = IncrementalCorrelator::new(4);
        assert_eq!(inc.window(), None);
        inc.append(&x, &x);
        assert_eq!(inc.window(), Some((Tick::new(10), Tick::new(13))));
    }

    #[test]
    fn evict_everything_returns_to_zero() {
        let x = signal(100, 3);
        let mut inc = IncrementalCorrelator::new(10);
        inc.append(&x, &x);
        inc.evict_to(Tick::new(100), &x, &x);
        assert!(inc.corr().values().iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn evict_to_current_start_is_noop() {
        let x = signal(50, 5);
        let mut inc = IncrementalCorrelator::new(10);
        inc.append(&x, &x);
        let before = inc.corr().clone();
        inc.evict_to(Tick::new(0), &x, &x);
        assert_eq!(inc.corr(), &before);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn gap_in_appends_panics() {
        let mut inc = IncrementalCorrelator::new(4);
        inc.append(&rles(0, vec![1.0]), &rles(0, vec![1.0]));
        inc.append(&rles(5, vec![1.0]), &rles(0, vec![1.0]));
    }

    #[test]
    #[should_panic(expected = "empty correlator")]
    fn evict_before_append_panics() {
        let mut inc = IncrementalCorrelator::new(4);
        inc.evict_to(Tick::new(0), &rles(0, vec![1.0]), &rles(0, vec![1.0]));
    }

    #[test]
    fn refill_matches_first_append_bitwise() {
        let x = signal(120, 11);
        let y = signal(150, 17);
        let max_lag = 16;

        let mut appended = IncrementalCorrelator::new(max_lag);
        appended.append(&x, &y);

        let mut refilled = IncrementalCorrelator::new(max_lag);
        refilled.refill(&crate::engine::RleCorrelator, &x, &y);

        assert_eq!(appended.window(), refilled.window());
        assert_eq!(appended.corr().values(), refilled.corr().values());

        // Both continue identically under subsequent corrections.
        appended.evict_to(Tick::new(30), &x, &y);
        refilled.evict_to(Tick::new(30), &x, &y);
        assert_eq!(appended.corr().values(), refilled.corr().values());
    }

    #[test]
    fn slide_moves_window_and_keeps_accumulator_bits() {
        let x = signal(80, 21);
        let mut inc = IncrementalCorrelator::new(12);
        inc.append(&x, &x);
        let before: Vec<u64> = inc.corr().values().iter().map(|v| v.to_bits()).collect();
        inc.slide((Tick::new(5), Tick::new(90)));
        assert_eq!(inc.window(), Some((Tick::new(5), Tick::new(90))));
        let after: Vec<u64> = inc.corr().values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(before, after);
    }

    #[test]
    #[should_panic(expected = "empty correlator")]
    fn slide_before_append_panics() {
        IncrementalCorrelator::new(4).slide((Tick::new(0), Tick::new(1)));
    }

    #[test]
    fn install_matches_refill() {
        let x = signal(120, 11);
        let y = signal(150, 17);
        let max_lag = 16;
        let engine = crate::engine::RleCorrelator;

        let mut refilled = IncrementalCorrelator::new(max_lag);
        refilled.refill(&engine, &x, &y);

        let mut installed = IncrementalCorrelator::new(max_lag);
        installed.install(
            crate::engine::Correlator::correlate(&engine, &x, &y, max_lag),
            (x.start(), x.end()),
        );

        assert_eq!(refilled.window(), installed.window());
        assert_eq!(refilled.corr().values(), installed.corr().values());

        refilled.evict_to(Tick::new(40), &x, &y);
        installed.evict_to(Tick::new(40), &x, &y);
        assert_eq!(refilled.corr().values(), installed.corr().values());
    }

    #[test]
    #[should_panic(expected = "wrong lag bound")]
    fn install_rejects_mismatched_lag() {
        let mut inc = IncrementalCorrelator::new(4);
        inc.install(CorrSeries::zeros(5), (Tick::new(0), Tick::new(1)));
    }

    #[test]
    fn reset_clears_state() {
        let x = signal(50, 9);
        let mut inc = IncrementalCorrelator::new(10);
        inc.append(&x, &x);
        inc.reset();
        assert_eq!(inc.window(), None);
        assert!(inc.corr().values().iter().all(|&v| v == 0.0));
    }
}
