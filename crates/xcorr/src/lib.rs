//! Cross-correlation engines and spike detection for E2EProf's pathmap.
//!
//! The causal-path discovery of E2EProf (Agarwala et al., DSN 2007) rests on
//! one signal-processing primitive: the lagged cross-correlation of two
//! density time series. If the signal on edge `B` contains a delayed copy of
//! the signal on edge `A`, their cross-correlation has a distinguishable
//! spike at the lag equal to the delay — evidence of a causal relationship
//! and a direct measurement of the path delay.
//!
//! This crate provides the paper's full menu of correlation strategies, all
//! computing the same *raw lagged products* `r(d) = Σ_t x(t) · y(t + d)` for
//! lags `d ∈ [0, T_u/τ)` so they can be compared head-to-head (Fig. 9):
//!
//! * [`engine::DenseCorrelator`] — direct computation on uncompressed
//!   signals ("no compression"), `O(n · L)` after the bounded-lag
//!   optimization.
//! * [`engine::SparseCorrelator`] — skips quiet zones ("burst
//!   compression"), `O(n/k · L)`.
//! * [`engine::RleCorrelator`] — correlates run-length-encoded series,
//!   processing each pair of overlapping runs in constant time ("RLE
//!   compression").
//! * [`engine::FftCorrelator`] — the classical FFT route (Eq. 2), the
//!   paper's non-incremental baseline.
//! * [`incremental::IncrementalCorrelator`] — maintains `r(d)` across
//!   sliding-window advances, touching only the `ΔW` appended/evicted
//!   ticks.
//!
//! For scale, [`screen`] adds a coarse-to-fine screening tier: the
//! correlation of `k`-decimated signals soundly upper-bounds the fine one
//! for non-negative densities, so causally dead candidate pairs are pruned
//! at `1/k` of the cost before any full-lag work happens.
//!
//! On top of the raw products, [`normalize`] applies Eq. 1's normalization
//! (per-lag Pearson coefficient) and [`spike`] finds the distinguishable
//! spikes (`mean + 3σ` threshold, local maxima, tallest-in-resolution-window
//! filtering) that pathmap interprets as causal delays.
//!
//! # Example
//!
//! ```
//! use e2eprof_timeseries::{DenseSeries, Tick};
//! use e2eprof_xcorr::engine::{Correlator, RleCorrelator};
//! use e2eprof_xcorr::spike::SpikeDetector;
//!
//! // y is a copy of x delayed by 3 ticks.
//! let x = DenseSeries::new(Tick::new(0), vec![0., 4., 0., 0., 2., 1., 0., 0.]);
//! let y = DenseSeries::new(Tick::new(0), vec![0., 0., 0., 0., 4., 0., 0., 2.]);
//! let corr = RleCorrelator.correlate(
//!     &x.to_sparse().to_rle(),
//!     &y.to_sparse().to_rle(),
//!     6,
//! );
//! // Production windows span thousands of lags, where the paper's 3σ
//! // threshold is appropriate; this toy series gets a gentler one.
//! let spikes = SpikeDetector::new(1.5, 1).detect(corr.values());
//! assert_eq!(spikes[0].lag, 3);
//! ```

// `deny` rather than `forbid`: the SIMD dispatch module opts back in with a
// scoped `#[allow(unsafe_code)]` for its `core::arch` intrinsic calls; all
// other modules remain unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod auto;
pub mod corr;
pub mod dense;
pub mod engine;
pub mod fft;
pub mod incremental;
pub mod normalize;
pub mod rle;
pub mod screen;
pub mod simd;
pub mod sparse;
pub mod spike;

pub use arena::CorrArena;
pub use auto::{AutoCorrelator, CostModel, EngineKind};
pub use corr::CorrSeries;
pub use engine::Correlator;
pub use spike::{Spike, SpikeDetector};
