//! Property-based tests: every engine computes the same function, the
//! incremental correlator never drifts from a from-scratch computation,
//! normalization stays within Pearson bounds, and spike detection honours
//! its contract.

use e2eprof_timeseries::{DenseSeries, RleSeries, Tick};
use e2eprof_xcorr::engine::{all_engines, Correlator, DenseCorrelator};
use e2eprof_xcorr::incremental::IncrementalCorrelator;
use e2eprof_xcorr::{
    normalize, rle, AutoCorrelator, CorrArena, CorrSeries, CostModel, EngineKind, SpikeDetector,
};
use proptest::prelude::*;

fn signal_strategy(max_len: usize) -> impl Strategy<Value = (u64, Vec<f64>)> {
    (
        0u64..50,
        prop::collection::vec(
            prop_oneof![
                3 => Just(0.0f64),
                2 => (1u32..6).prop_map(|c| (c as f64).sqrt()),
            ],
            0..max_len,
        ),
    )
}

fn to_rle(start: u64, values: Vec<f64>) -> RleSeries {
    DenseSeries::new(Tick::new(start), values)
        .to_sparse()
        .to_rle()
}

/// Signals whose values (and hence every lagged product and partial sum)
/// are small integers: exactly representable in f64 under *any* summation
/// order, so cross-engine comparisons can demand bitwise equality.
fn integer_signal_strategy(max_len: usize) -> impl Strategy<Value = (u64, Vec<f64>)> {
    (
        0u64..50,
        prop::collection::vec(
            prop_oneof![
                3 => Just(0.0f64),
                2 => (1u32..9).prop_map(|c| c as f64),
            ],
            0..max_len,
        ),
    )
}

proptest! {
    #[test]
    fn engines_agree_on_arbitrary_signals(
        (xs, xv) in signal_strategy(120),
        (ys, yv) in signal_strategy(160),
        max_lag in 0u64..80,
    ) {
        let x = to_rle(xs, xv);
        let y = to_rle(ys, yv);
        let reference = DenseCorrelator.correlate(&x, &y, max_lag);
        for engine in all_engines() {
            let got = engine.correlate(&x, &y, max_lag);
            prop_assert_eq!(got.max_lag(), max_lag);
            prop_assert!(
                reference.max_abs_diff(&got) < 1e-6,
                "{} diverged: {:?} vs {:?}", engine.name(), reference.values(), got.values()
            );
        }
    }

    #[test]
    fn direct_engines_bitwise_equal_on_integer_signals(
        (xs, xv) in integer_signal_strategy(120),
        (ys, yv) in integer_signal_strategy(160),
        max_lag in 0u64..80,
    ) {
        let x = to_rle(xs, xv);
        let y = to_rle(ys, yv);
        let reference = DenseCorrelator.correlate(&x, &y, max_lag);
        for engine in all_engines() {
            let got = engine.correlate(&x, &y, max_lag);
            if engine.name() == "fft" {
                // Irrational twiddle factors make the FFT route inexact
                // even on integer inputs; it gets a tolerance instead.
                prop_assert!(
                    reference.max_abs_diff(&got) < 1e-6,
                    "fft diverged: {:?} vs {:?}", reference.values(), got.values()
                );
            } else {
                prop_assert_eq!(
                    reference.values(), got.values(),
                    "{} not bitwise equal on integer signals", engine.name()
                );
            }
        }
    }

    #[test]
    fn auto_matches_reference_under_arbitrary_cost_models(
        (xs, xv) in integer_signal_strategy(120),
        (ys, yv) in integer_signal_strategy(160),
        max_lag in 0u64..80,
        dense_ns in 0.01f64..20.0,
        sparse_ns in 0.01f64..20.0,
        rle_ns in 0.01f64..20.0,
        fft_ns in 0.01f64..20.0,
    ) {
        // Whatever the (randomized) cost constants make the selector pick,
        // the result must be the same function — selection is a pure
        // performance decision and can never change computed values.
        let x = to_rle(xs, xv);
        let y = to_rle(ys, yv);
        let model = CostModel {
            dense_op_ns: dense_ns,
            sparse_op_ns: sparse_ns,
            rle_op_ns: rle_ns,
            fft_op_ns: fft_ns,
        };
        let auto = AutoCorrelator::new(model);
        let reference = DenseCorrelator.correlate(&x, &y, max_lag);
        let got = auto.correlate(&x, &y, max_lag);
        if auto.pick(&x, &y, max_lag) == EngineKind::Fft {
            prop_assert!(reference.max_abs_diff(&got) < 1e-6);
        } else {
            prop_assert_eq!(reference.values(), got.values());
        }
    }

    #[test]
    fn arena_correlate_into_is_bitwise_identical_to_correlate(
        raw in prop::collection::vec(
            (signal_strategy(80), signal_strategy(100)),
            1..8,
        ),
        max_lag in 0u64..40,
    ) {
        // One shared arena across a whole sequence of differently-shaped
        // pairs: buffer reuse must never leak state between calls.
        let owned: Vec<(RleSeries, RleSeries)> = raw
            .into_iter()
            .map(|((xs, xv), (ys, yv))| (to_rle(xs, xv), to_rle(ys, yv)))
            .collect();
        let mut engines = all_engines();
        engines.push(Box::new(AutoCorrelator::with_default_model()));
        for engine in engines {
            let mut arena = CorrArena::new();
            let mut out = CorrSeries::zeros(0);
            for (x, y) in &owned {
                engine.correlate_into(x, y, max_lag, &mut out, &mut arena);
                let direct = engine.correlate(x, y, max_lag);
                prop_assert_eq!(
                    out.values(), direct.values(),
                    "{} arena path diverged", engine.name()
                );
            }
        }
    }

    #[test]
    fn incremental_matches_direct_after_slides(
        (_, xv) in signal_strategy(150),
        (_, yv) in signal_strategy(180),
        max_lag in 1u64..30,
        chunk_len in 5u64..40,
        window_len in 20u64..80,
    ) {
        let x = to_rle(0, xv);
        let y = to_rle(0, yv);
        let total = x.len();
        let mut inc = IncrementalCorrelator::new(max_lag);
        let mut end = 0u64;
        while end < total {
            let next = (end + chunk_len).min(total);
            inc.append(&x.slice(Tick::new(end), Tick::new(next)), &y);
            end = next;
            let start = end.saturating_sub(window_len);
            inc.evict_to(Tick::new(start), &x, &y);
            let direct = rle::correlate(&x.slice(Tick::new(start), Tick::new(end)), &y, max_lag);
            prop_assert!(
                inc.corr().max_abs_diff(&direct) < 1e-6,
                "window [{start},{end}) drifted"
            );
        }
    }

    #[test]
    fn batch_is_bitwise_identical_to_serial_for_random_inputs(
        raw in prop::collection::vec(
            (signal_strategy(60), signal_strategy(90)),
            0..12,
        ),
        max_lag in 0u64..40,
        num_workers in 1usize..9,
    ) {
        let owned: Vec<(RleSeries, RleSeries)> = raw
            .into_iter()
            .map(|((xs, xv), (ys, yv))| (to_rle(xs, xv), to_rle(ys, yv)))
            .collect();
        let pairs: Vec<(&RleSeries, &RleSeries)> =
            owned.iter().map(|(x, y)| (x, y)).collect();
        for engine in all_engines() {
            let serial: Vec<_> = pairs
                .iter()
                .map(|&(x, y)| engine.correlate(x, y, max_lag))
                .collect();
            let batched = engine.correlate_batch(&pairs, max_lag, num_workers);
            prop_assert_eq!(batched.len(), serial.len());
            for (b, s) in batched.iter().zip(&serial) {
                // Bitwise identity, not tolerance: each pair's arithmetic
                // is untouched by how the batch was sharded.
                prop_assert_eq!(b.values(), s.values(), "{} diverged", engine.name());
            }
        }
    }

    #[test]
    fn incremental_matches_direct_under_random_splits(
        (_, xv) in signal_strategy(160),
        (ys, yv) in signal_strategy(200),
        max_lag in 1u64..30,
        cuts in prop::collection::vec(1u64..160, 0..8),
        evict_frac in 0.0f64..1.0,
    ) {
        // Append the source in arbitrarily-sized contiguous chunks, then
        // evict an arbitrary prefix: the accumulated products must match a
        // from-scratch correlation of the surviving window.
        let x = to_rle(0, xv);
        let y = to_rle(ys, yv);
        let total = x.len();
        prop_assume!(total > 0);
        let mut bounds: Vec<u64> = cuts.into_iter().filter(|&c| c < total).collect();
        bounds.push(total);
        bounds.sort_unstable();
        bounds.dedup();

        let mut inc = IncrementalCorrelator::new(max_lag);
        let mut prev = 0u64;
        for &b in &bounds {
            inc.append(&x.slice(Tick::new(prev), Tick::new(b)), &y);
            prev = b;
        }
        let new_start = ((total as f64) * evict_frac).floor() as u64;
        inc.evict_to(Tick::new(new_start), &x, &y);

        let direct = rle::correlate(&x.slice(Tick::new(new_start), Tick::new(total)), &y, max_lag);
        prop_assert!(
            inc.corr().max_abs_diff(&direct) < 1e-6,
            "window [{},{}) after {} appends drifted", new_start, total, bounds.len()
        );
    }

    #[test]
    fn normalized_values_are_pearson_bounded(
        (xs, xv) in signal_strategy(100),
        (ys, yv) in signal_strategy(140),
        max_lag in 1u64..40,
    ) {
        let x = to_rle(xs, xv);
        let y = to_rle(ys, yv);
        let raw = rle::correlate(&x, &y, max_lag);
        let rho = normalize::normalize(&raw, &x, &y);
        prop_assert!(rho.values().iter().all(|v| v.is_finite() && (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn exact_shift_detected_at_correct_lag(
        (_, xv) in signal_strategy(400),
        shift in 0u64..40,
    ) {
        // Require enough activity for a meaningful test.
        let support = xv.iter().filter(|&&v| v != 0.0).count();
        prop_assume!(support >= 20);
        let x = to_rle(0, xv.clone());
        let mut yv = vec![0.0; shift as usize];
        yv.extend(&xv);
        let y = to_rle(0, yv);
        let raw = rle::correlate(&x, &y, shift + 41);
        let rho = normalize::normalize(&raw, &x, &y);
        // The exact alignment must produce coefficient 1 and be the peak.
        prop_assert!((rho.value_at(shift) - 1.0).abs() < 1e-9);
        let (peak_lag, _) = rho.peak().expect("nonempty");
        prop_assert_eq!(peak_lag, shift);
    }

    #[test]
    fn spikes_are_local_maxima_above_threshold(
        corr in prop::collection::vec(0.0f64..10.0, 1..300),
        sigma in 0.5f64..4.0,
        resolution in 1u64..20,
    ) {
        let det = SpikeDetector::new(sigma, resolution);
        let spikes = det.detect(&corr);
        let n = corr.len() as f64;
        let mean = corr.iter().sum::<f64>() / n;
        let var = (corr.iter().map(|v| v * v).sum::<f64>() / n - mean * mean).max(0.0);
        let threshold = mean + sigma * var.sqrt();
        for s in &spikes {
            let i = s.lag as usize;
            prop_assert!(corr[i] > threshold);
            if i > 0 { prop_assert!(corr[i - 1] <= corr[i]); }
            if i + 1 < corr.len() { prop_assert!(corr[i + 1] <= corr[i]); }
        }
        // Pairwise separation respects the resolution window.
        for w in spikes.windows(2) {
            prop_assert!(w[1].lag - w[0].lag >= resolution);
        }
    }

    #[test]
    fn correlation_is_bilinear_in_x(
        (_, av) in signal_strategy(80),
        (_, bv) in signal_strategy(80),
        (_, yv) in signal_strategy(120),
        max_lag in 1u64..30,
    ) {
        // r(a + b, y) = r(a, y) + r(b, y): split a signal into its two
        // halves and check additivity (the property the incremental engine
        // relies on).
        let n = av.len().max(bv.len());
        let mut sum = vec![0.0; n];
        for (i, &v) in av.iter().enumerate() { sum[i] += v; }
        for (i, &v) in bv.iter().enumerate() { sum[i] += v; }
        // Values may now be non-canonical (e.g. 2·√2) — fine for dense math.
        let dense_a = DenseSeries::new(Tick::new(0), {
            let mut v = av.clone(); v.resize(n, 0.0); v
        });
        let dense_b = DenseSeries::new(Tick::new(0), {
            let mut v = bv.clone(); v.resize(n, 0.0); v
        });
        let dense_sum = DenseSeries::new(Tick::new(0), sum);
        let y = DenseSeries::new(Tick::new(0), yv);
        let ra = e2eprof_xcorr::dense::correlate(&dense_a, &y, max_lag);
        let rb = e2eprof_xcorr::dense::correlate(&dense_b, &y, max_lag);
        let rs = e2eprof_xcorr::dense::correlate(&dense_sum, &y, max_lag);
        for d in 0..max_lag {
            prop_assert!((rs.value_at(d) - ra.value_at(d) - rb.value_at(d)).abs() < 1e-9);
        }
    }
}

proptest! {
    /// Soundness of the coarse-to-fine screening tier on arbitrary
    /// non-negative signals: for every decimation factor, the raw cover
    /// bound dominates every fine correlation value it covers, and
    /// `max_rho_bound` dominates every normalized coefficient. This is
    /// the property that makes pruning observationally invisible.
    #[test]
    fn screening_bounds_dominate_fine_correlation(
        (xs, xv) in signal_strategy(150),
        (ys, yv) in signal_strategy(200),
        max_lag in 1u64..60,
    ) {
        use e2eprof_xcorr::screen::{coarse_lag_bound, cover_bound, max_rho_bound};
        let x = to_rle(xs, xv);
        let y = to_rle(ys, yv);
        let fine = rle::correlate(&x, &y, max_lag);
        let rho = normalize::normalize(&fine, &x, &y);
        for k in [2u64, 4, 8, 16] {
            let coarse = rle::correlate(
                &x.decimate(k),
                &y.decimate(k),
                coarse_lag_bound(max_lag, k),
            );
            let bound = max_rho_bound(&coarse, k, &x, &y, max_lag, 0.0);
            prop_assert!(bound >= 0.0);
            // Extra uncovered mass can only loosen the bound.
            prop_assert!(max_rho_bound(&coarse, k, &x, &y, max_lag, 1.5) >= bound);
            for d in 0..max_lag {
                let cover = cover_bound(&coarse, k, d);
                prop_assert!(
                    fine.value_at(d) <= cover + 1e-9,
                    "k={} d={}: fine {} > cover {}", k, d, fine.value_at(d), cover
                );
                prop_assert!(
                    rho.value_at(d) <= bound + 1e-9,
                    "k={} d={}: rho {} > bound {}", k, d, rho.value_at(d), bound
                );
            }
        }
    }
}

/// Dense brute-force Pearson at one lag, straight from Eq. 1.
fn brute_force_rho(x: &RleSeries, y: &RleSeries, d: u64) -> f64 {
    let n = x.len();
    let xv: Vec<f64> = (0..n).map(|i| x.value_at(x.start() + i)).collect();
    let yv: Vec<f64> = (0..n).map(|i| y.value_at(x.start() + i + d)).collect();
    let xm = xv.iter().sum::<f64>() / n as f64;
    let ym = yv.iter().sum::<f64>() / n as f64;
    let num: f64 = xv.iter().zip(&yv).map(|(a, b)| (a - xm) * (b - ym)).sum();
    let ex: f64 = xv.iter().map(|a| (a - xm) * (a - xm)).sum();
    let ey: f64 = yv.iter().map(|b| (b - ym) * (b - ym)).sum();
    if ex * ey < 1e-12 {
        0.0
    } else {
        num / (ex * ey).sqrt()
    }
}

proptest! {
    /// The O(runs + L) prefix-sum normalization must equal the dense
    /// Eq. 1 computation at every lag, for arbitrary signals and spans.
    #[test]
    fn normalization_matches_dense_eq1(
        (xs, xv) in signal_strategy(80),
        (ys, yv) in signal_strategy(120),
        max_lag in 1u64..25,
    ) {
        prop_assume!(!xv.is_empty());
        let x = to_rle(xs, xv);
        let y = to_rle(ys, yv);
        let raw = rle::correlate(&x, &y, max_lag);
        let rho = normalize::normalize(&raw, &x, &y);
        for d in 0..max_lag {
            let expect = brute_force_rho(&x, &y, d);
            let got = rho.value_at(d);
            // Near-zero energies sit inside both implementations' guard
            // bands; tiny disagreements there are rounding, not error.
            let agree = (got - expect).abs() < 1e-9
                || (got.abs() < 1e-4 && expect.abs() < 1e-4);
            prop_assert!(agree, "lag {}: got {} expect {}", d, got, expect);
        }
    }
}

proptest! {
    /// The activity-gated skip invariant (DESIGN.md §6.7): when both
    /// signals are run-free over the two boundary regions a window slide
    /// touches — `[s0, s1 + L)` around the moving start and `[e0, e1 + L)`
    /// around the moving end — then `slide` (the skip path: move the
    /// window, keep the accumulator verbatim) is **bitwise identical** to
    /// the full append + evict advance the eager analyzer performs. Every
    /// correction term is a sum of zero products over those regions, and
    /// the signals are non-negative so no `-0.0` can make `+= 0.0` move a
    /// bit.
    #[test]
    fn quiet_slide_is_bitwise_identical_to_advance(
        (_, xv) in signal_strategy(260),
        (_, yv) in signal_strategy(300),
        max_lag in 1u64..25,
        s0 in 0u64..40,
        w in 30u64..90,
        ds in 0u64..20,
        de in 0u64..20,
    ) {
        let (e0, s1) = (s0 + w, s0 + ds);
        let e1 = e0 + de;
        let horizon = (e1 + max_lag) as usize;
        let mut xv = xv;
        let mut yv = yv;
        xv.resize(horizon.max(xv.len()), 0.0);
        yv.resize(horizon.max(yv.len()), 0.0);
        // Force the quiet predicate: zero both boundary regions.
        for v in [&mut xv, &mut yv] {
            for t in s0..(s1 + max_lag).min(v.len() as u64) { v[t as usize] = 0.0; }
            for t in e0..(e1 + max_lag).min(v.len() as u64) { v[t as usize] = 0.0; }
        }
        let x = to_rle(0, xv);
        let y = to_rle(0, yv);
        let y_horizon = y.end();

        // Two correlators warmed identically over the previous window.
        let mut adv = IncrementalCorrelator::new(max_lag);
        let mut skip = IncrementalCorrelator::new(max_lag);
        for inc in [&mut adv, &mut skip] {
            inc.append(&x.slice(Tick::new(s0), Tick::new(e0)), &y);
        }

        // Eager maintenance path, exactly as the analyzer's advance_pair
        // issues it: append the new suffix, then evict to the new start.
        if e0 < e1 {
            adv.append(
                &x.slice(Tick::new(e0), Tick::new(e1)),
                &y.slice(Tick::new(e0), y_horizon),
            );
        }
        adv.evict_to(
            Tick::new(s1),
            &x.slice(Tick::new(s0), Tick::new(s1)),
            &y.slice(Tick::new(s0), Tick::new((s1 + max_lag).min(y_horizon.index()))),
        );

        // Activity-gated skip path.
        skip.slide((Tick::new(s1), Tick::new(e1)));

        prop_assert_eq!(adv.window(), skip.window());
        let (a, b) = (adv.corr().values(), skip.corr().values());
        prop_assert_eq!(a.len(), b.len());
        for (d, (va, vb)) in a.iter().zip(b).enumerate() {
            prop_assert_eq!(
                va.to_bits(), vb.to_bits(),
                "lag {}: advance {} != skipped {}", d, va, vb
            );
        }
    }
}
