//! Adversarial decoder hardening: every mangled frame must come back as a
//! typed [`DecodeError`] — never a panic, never an allocation sized by
//! attacker-controlled length claims.
//!
//! The corpus covers both wire versions: truncation at *every* byte
//! offset, flipped magic/version/flag bytes, overlapping runs (expressible
//! only in v1 — v2 gap-encodes run starts, so overlap is structurally
//! impossible), and absurd declared entry/run counts. Run in release mode
//! by CI as well, since `debug_assert` guards are compiled out there.

use e2eprof_timeseries::wire::{self, DecodeError};
use e2eprof_timeseries::{RleSeries, Run, Tick};

fn sample_series() -> RleSeries {
    RleSeries::from_parts(
        Tick::new(1_000),
        600,
        vec![
            Run::new(Tick::new(1_004), 7, 2f64.sqrt()),
            Run::new(Tick::new(1_050), 1, 1.0),
            Run::new(Tick::new(1_300), 40, 5f64.sqrt()),
        ],
    )
}

fn sample_batch() -> Vec<((u32, u32), RleSeries)> {
    vec![
        ((3, 0), sample_series()),
        ((0, 4), RleSeries::empty(Tick::new(1_600), 100)),
        (
            (9, 9),
            RleSeries::from_parts(Tick::new(0), 64, vec![Run::new(Tick::new(63), 1, 0.25)]),
        ),
    ]
}

/// Both decoders over both formats: the result type is the whole contract
/// — reaching it at all proves no panic, and the length caps inside the
/// decoders prove no claim-sized allocation happened on the way.
fn decode_any(frame: &[u8]) -> Result<(), DecodeError> {
    match wire::frame_version(frame)? {
        1 => wire::decode(frame).map(|_| ()),
        2 => wire::decode_batch(frame).map(|_| ()),
        v => Err(DecodeError::UnsupportedVersion(v)),
    }
}

#[test]
fn truncation_at_every_offset_is_a_typed_error() {
    let frames = [
        wire::encode(&sample_series()).to_vec(),
        wire::encode_batch(&sample_batch(), true).to_vec(),
        wire::encode_batch(&sample_batch(), false).to_vec(),
    ];
    for frame in &frames {
        assert!(decode_any(frame).is_ok(), "uncut frame must decode");
        for cut in 0..frame.len() {
            assert!(
                decode_any(&frame[..cut]).is_err(),
                "cut at {cut}/{} decoded silently",
                frame.len()
            );
        }
    }
}

#[test]
fn every_single_byte_flip_is_handled() {
    // Flipping any one byte must yield Ok (semantically harmless bits,
    // e.g. an amplitude's low mantissa) or a typed error — never a panic.
    // Run equality checks stay out of it; this is a no-crash fuzz sweep.
    let frames = [
        wire::encode(&sample_series()).to_vec(),
        wire::encode_batch(&sample_batch(), true).to_vec(),
    ];
    for frame in &frames {
        for i in 0..frame.len() {
            for bit in 0..8 {
                let mut f = frame.clone();
                f[i] ^= 1 << bit;
                let _ = decode_any(&f);
            }
        }
    }
}

#[test]
fn flipped_magic_and_version_are_typed_errors() {
    for frame in [
        wire::encode(&sample_series()).to_vec(),
        wire::encode_batch(&sample_batch(), true).to_vec(),
    ] {
        let mut bad_magic = frame.clone();
        bad_magic[0] = b'x';
        assert_eq!(decode_any(&bad_magic), Err(DecodeError::BadMagic));
        let mut bad_version = frame.clone();
        bad_version[4] = 77;
        assert_eq!(
            decode_any(&bad_version),
            Err(DecodeError::UnsupportedVersion(77))
        );
    }
    // Cross-version confusion: each decoder rejects the other's frames.
    assert_eq!(
        wire::decode(&wire::encode_batch(&sample_batch(), true)),
        Err(DecodeError::UnsupportedVersion(2))
    );
    assert_eq!(
        wire::decode_batch(&wire::encode(&sample_series())),
        Err(DecodeError::UnsupportedVersion(1))
    );
}

#[test]
fn v1_overlapping_runs_rejected() {
    // Rewrite the second run's start to land inside the first run.
    // v1 layout: 4 magic + 1 version + 8 start + 8 len + 4 num_runs = 25
    // byte header, then 20-byte runs (8 start + 4 len + 8 value).
    let mut f = wire::encode(&sample_series()).to_vec();
    let second_run_start = 25 + 20;
    f[second_run_start..second_run_start + 8].copy_from_slice(&1_005u64.to_be_bytes());
    assert_eq!(
        wire::decode(&f),
        Err(DecodeError::Corrupt("runs overlap or out of order"))
    );
}

#[test]
fn v1_absurd_run_count_is_truncation_not_allocation() {
    let mut f = wire::encode(&sample_series()).to_vec();
    // num_runs sits after magic/version/start/len.
    f[21..25].copy_from_slice(&u32::MAX.to_be_bytes());
    assert_eq!(wire::decode(&f), Err(DecodeError::Truncated));
}

#[test]
fn v2_absurd_declared_counts_are_capped() {
    // Headers claiming astronomically many entries/runs with almost no
    // bytes behind them must die on the length cap immediately.
    let mut huge_entries = b"E2EP\x02\x01".to_vec();
    huge_entries.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]); // u64::MAX-ish varint
    assert_eq!(
        wire::decode_batch(&huge_entries),
        Err(DecodeError::Truncated)
    );

    let mut huge_runs = b"E2EP\x02\x01".to_vec();
    huge_runs.push(1); // one entry
    huge_runs.extend_from_slice(&[0, 1, 0, 200, 1]); // src, dst, start, len, ...
    huge_runs.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0x0f]); // num_runs ≈ 2^34
    assert_eq!(wire::decode_batch(&huge_runs), Err(DecodeError::Truncated));
}

#[test]
fn v2_runs_escaping_the_declared_span_rejected() {
    // One entry spanning [0, 4) with a run of length 200: gap=0, len=200.
    let mut f = b"E2EP\x02\x01".to_vec();
    f.push(1); // one entry
    f.extend_from_slice(&[2, 3, 0, 4, 1]); // src=2 dst=3 start=0 len=4 num_runs=1
    f.extend_from_slice(&[0, 200, 1]); // gap=0 len=200 amp=√1
    assert_eq!(
        wire::decode_batch(&f),
        Err(DecodeError::Corrupt("run outside declared span"))
    );
}

#[test]
fn v2_zero_length_and_zero_valued_runs_rejected() {
    let mut zero_len = b"E2EP\x02\x01".to_vec();
    zero_len.push(1);
    zero_len.extend_from_slice(&[2, 3, 0, 4, 1]);
    zero_len.extend_from_slice(&[0, 0, 1]); // len = 0
    assert_eq!(
        wire::decode_batch(&zero_len),
        Err(DecodeError::Corrupt("zero-length run"))
    );

    let mut zero_val = b"E2EP\x02\x01".to_vec();
    zero_val.push(1);
    zero_val.extend_from_slice(&[2, 3, 0, 4, 1]);
    zero_val.extend_from_slice(&[0, 2, 0]); // amp escape code 0 → raw f64
    zero_val.extend_from_slice(&0f64.to_be_bytes());
    assert_eq!(
        wire::decode_batch(&zero_val),
        Err(DecodeError::Corrupt("zero or non-finite run value"))
    );

    let mut nan_val = b"E2EP\x02\x01".to_vec();
    nan_val.push(1);
    nan_val.extend_from_slice(&[2, 3, 0, 4, 1]);
    nan_val.extend_from_slice(&[0, 2, 0]);
    nan_val.extend_from_slice(&f64::NAN.to_be_bytes());
    assert_eq!(
        wire::decode_batch(&nan_val),
        Err(DecodeError::Corrupt("zero or non-finite run value"))
    );
}

#[test]
fn random_garbage_never_panics() {
    // A cheap deterministic xorshift fuzz pass over both entry points.
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..2_000 {
        let len = (next() % 96) as usize;
        let mut frame: Vec<u8> = (0..len).map(|_| next() as u8).collect();
        if round % 2 == 0 && frame.len() >= 5 {
            // Half the corpus gets a valid magic + version so the fuzz
            // reaches past the header checks.
            frame[..4].copy_from_slice(b"E2EP");
            frame[4] = if round % 4 == 0 { 1 } else { 2 };
        }
        let _ = decode_any(&frame);
    }
}
