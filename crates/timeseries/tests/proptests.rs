//! Property-based tests for the series representations: every
//! representation is a lossless view of the same underlying signal, and
//! compression must never change values, spans, or statistics.

use e2eprof_timeseries::density::DensityEstimator;
use e2eprof_timeseries::{wire, DenseSeries, Nanos, Quanta, SparseSeries, Tick};
use proptest::prelude::*;

/// An arbitrary signal as a dense value vector; values are drawn from the
/// small set a density function can produce (sqrt of small counts) plus
/// zeros, so RLE merging actually happens.
fn signal_strategy() -> impl Strategy<Value = (u64, Vec<f64>)> {
    (
        0u64..1000,
        prop::collection::vec(
            prop_oneof![
                3 => Just(0.0f64),
                2 => (1u32..5).prop_map(|c| (c as f64).sqrt()),
            ],
            0..200,
        ),
    )
}

fn dense(start: u64, values: Vec<f64>) -> DenseSeries {
    DenseSeries::new(Tick::new(start), values)
}

proptest! {
    #[test]
    fn dense_sparse_round_trip((start, values) in signal_strategy()) {
        let d = dense(start, values);
        let back = d.to_sparse().to_dense();
        prop_assert_eq!(&back, &d);
    }

    #[test]
    fn sparse_rle_round_trip((start, values) in signal_strategy()) {
        let s = dense(start, values).to_sparse();
        prop_assert_eq!(s.to_rle().to_sparse(), s);
    }

    #[test]
    fn rle_support_equals_sparse_entries((start, values) in signal_strategy()) {
        let s = dense(start, values).to_sparse();
        prop_assert_eq!(s.to_rle().support(), s.num_entries() as u64);
    }

    #[test]
    fn stats_agree_across_representations((start, values) in signal_strategy()) {
        let d = dense(start, values);
        let s = d.to_sparse();
        let r = s.to_rle();
        prop_assert!((d.stats().mean() - s.stats().mean()).abs() < 1e-9);
        prop_assert!((s.stats().mean() - r.stats().mean()).abs() < 1e-9);
        prop_assert!((d.stats().variance() - r.stats().variance()).abs() < 1e-9);
        prop_assert_eq!(d.stats().window_len(), r.stats().window_len());
    }

    #[test]
    fn wire_round_trip((start, values) in signal_strategy()) {
        let r = dense(start, values).to_sparse().to_rle();
        let decoded = wire::decode(&wire::encode(&r)).expect("round trip");
        prop_assert_eq!(decoded, r);
    }

    #[test]
    fn slice_matches_pointwise(
        (start, values) in signal_strategy(),
        a in 0u64..220,
        b in 0u64..220,
    ) {
        let d = dense(start, values);
        let (a, b) = (start + a.min(b), start + a.max(b));
        let sliced = d.to_sparse().slice(Tick::new(a), Tick::new(b));
        for t in a..b {
            prop_assert_eq!(sliced.value_at(Tick::new(t)), d.value_at(Tick::new(t)));
        }
        // Nothing outside the slice span.
        prop_assert!(sliced
            .entries()
            .iter()
            .all(|e| e.tick().index() >= a && e.tick().index() < b));
    }

    #[test]
    fn rle_slice_matches_sparse_slice(
        (start, values) in signal_strategy(),
        a in 0u64..220,
        b in 0u64..220,
    ) {
        let s = dense(start, values).to_sparse();
        let (a, b) = (start + a.min(b), start + a.max(b));
        let via_rle = s.to_rle().slice(Tick::new(a), Tick::new(b)).to_sparse();
        let direct = s.slice(Tick::new(a), Tick::new(b));
        prop_assert_eq!(via_rle, direct);
    }

    #[test]
    fn rle_append_equals_whole_encode(
        (start, values) in signal_strategy(),
        split_frac in 0.0f64..1.0,
    ) {
        let d = dense(start, values);
        let split = start + ((d.len() as f64 * split_frac) as u64).min(d.len());
        let whole = d.to_sparse().to_rle();
        let mut left = d.to_sparse().slice(d.start(), Tick::new(split)).to_rle();
        let right = d.to_sparse().slice(Tick::new(split), d.end()).to_rle();
        left.append_chunk(&right);
        prop_assert_eq!(left, whole);
    }
}

/// Reference eviction: drop from the front until at most `cap` ticks.
fn trim_model(start: &mut u64, vals: &mut Vec<f64>, cap: u64) {
    if vals.len() as u64 > cap {
        let drop = vals.len() - cap as usize;
        vals.drain(..drop);
        *start += drop as u64;
    }
}

proptest! {
    /// [`SlidingWindow`] against a brute-force dense reference, under
    /// arbitrary chunk sizes, stream gaps (tracer restarts ahead of the
    /// window), and duplicate/overlapping replays (tracer restarts behind
    /// it). The model mirrors `append_or_reset`'s contract: contiguous
    /// chunks append then evict to capacity, a gap resets the window to
    /// the chunk verbatim (no eviction — the chunk is the entire
    /// history), replays contribute only their novel suffix, and fully
    /// stale chunks are ignored.
    #[test]
    fn sliding_window_matches_dense_reference(
        cap in 5u64..60,
        ops in prop::collection::vec(
            (
                0u8..10,  // <6: contiguous, <8: gap, else: replay
                1u64..25, // gap / replay distance (and the first origin)
                prop::collection::vec(
                    prop_oneof![
                        2 => Just(0.0f64),
                        1 => (1u32..5).prop_map(|c| (c as f64).sqrt()),
                    ],
                    1..30,
                ),
            ),
            1..40,
        ),
    ) {
        use e2eprof_timeseries::window::SlidingWindow;
        let mut w = SlidingWindow::new(cap);
        let mut m_start = 0u64;
        let mut m_vals: Vec<f64> = Vec::new();
        let mut seen = false;
        for (mode, dist, cv) in ops {
            let end = m_start + m_vals.len() as u64;
            let cs = if !seen {
                dist
            } else if mode < 6 {
                end
            } else if mode < 8 {
                end + dist
            } else {
                end.saturating_sub(dist)
            };
            let chunk = DenseSeries::new(Tick::new(cs), cv.clone())
                .to_sparse()
                .to_rle();
            let healed = w.append_or_reset(&chunk);

            if !seen {
                m_start = cs;
                m_vals = cv;
                seen = true;
                trim_model(&mut m_start, &mut m_vals, cap);
                prop_assert!(!healed);
            } else if cs > end {
                m_start = cs;
                m_vals = cv;
                prop_assert!(healed);
            } else if cs + cv.len() as u64 <= end {
                prop_assert!(!healed); // stale duplicate, ignored
            } else {
                let skip = (end - cs) as usize;
                m_vals.extend_from_slice(&cv[skip..]);
                trim_model(&mut m_start, &mut m_vals, cap);
                prop_assert!(!healed);
            }

            let m_end = m_start + m_vals.len() as u64;
            prop_assert_eq!(w.start(), Tick::new(m_start));
            prop_assert_eq!(w.end(), Tick::new(m_end));
            let s = w.series();
            for (i, &v) in m_vals.iter().enumerate() {
                prop_assert_eq!(s.value_at(Tick::new(m_start + i as u64)), v);
            }
            // Views clamp to the retained span and agree pointwise.
            let v = w.view(
                Tick::new(m_start.saturating_sub(3)),
                Tick::new(m_end + 3),
            );
            prop_assert_eq!(v.start(), Tick::new(m_start));
            prop_assert_eq!(v.end(), Tick::new(m_end));
            for (i, &mv) in m_vals.iter().enumerate() {
                prop_assert_eq!(v.value_at(Tick::new(m_start + i as u64)), mv);
            }
        }
    }
}

/// Arbitrary sorted timestamps in a bounded horizon (milliseconds).
fn timestamps_strategy() -> impl Strategy<Value = Vec<Nanos>> {
    prop::collection::vec(0u64..500_000u64, 0..300).prop_map(|mut us| {
        us.sort_unstable();
        us.into_iter().map(Nanos::from_micros).collect()
    })
}

proptest! {
    #[test]
    fn density_count_matches_brute_force(ts in timestamps_strategy(), omega in 1u64..60) {
        let quanta = Quanta::from_millis(1);
        let series = DensityEstimator::from_timestamps(quanta, omega, &ts);
        let half_ns = omega * 1_000_000 / 2;
        // Check a sample of ticks against the definition.
        for tick in (0..series.end().index()).step_by(7) {
            let center = tick * 1_000_000;
            let count = ts
                .iter()
                .filter(|t| {
                    let t = t.as_nanos();
                    t + half_ns >= center && t <= center + half_ns
                })
                .count();
            let expect = (count as f64).sqrt();
            let got = series.value_at(Tick::new(tick));
            prop_assert!((got - expect).abs() < 1e-9, "tick {}: got {} expect {}", tick, got, expect);
        }
    }

    #[test]
    fn density_chunked_equals_one_shot(ts in timestamps_strategy(), omega in 1u64..40) {
        let quanta = Quanta::from_millis(1);
        let one_shot = DensityEstimator::from_timestamps(quanta, omega, &ts);

        let mut est = DensityEstimator::new(quanta, omega);
        let mut acc: Option<SparseSeries> = None;
        let mut i = 0;
        for drain_at in [100u64, 250, 400] {
            // All messages whose window could touch ticks < drain_at.
            let horizon = drain_at * 1_000_000 + omega * 1_000_000 / 2;
            while i < ts.len() && ts[i].as_nanos() < horizon {
                est.push(ts[i]);
                i += 1;
            }
            let chunk = est.drain_chunk(Tick::new(drain_at));
            match &mut acc {
                None => acc = Some(chunk),
                Some(a) => a.append_chunk(&chunk),
            }
        }
        while i < ts.len() {
            est.push(ts[i]);
            i += 1;
        }
        let tail = est.finish();
        let mut acc = acc.expect("chunks");
        acc.append_chunk(&tail);

        for t in 0..one_shot.end().index() {
            prop_assert_eq!(acc.value_at(Tick::new(t)), one_shot.value_at(Tick::new(t)));
        }
    }
}

/// An arbitrary multi-series batch: per-entry edge keys plus a signal.
type BatchSpec = Vec<((u32, u32), (u64, Vec<f64>))>;

fn batch_strategy() -> impl Strategy<Value = BatchSpec> {
    prop::collection::vec(((any::<u32>(), any::<u32>()), signal_strategy()), 0..6)
}

proptest! {
    /// Wire-v2 batch round trip is the identity, with and without the
    /// integer-amplitude encoding (signal values are √count or zero, so
    /// the integer path is exercised and must stay lossless).
    #[test]
    fn wire_v2_batch_round_trip(entries in batch_strategy(), int_amp in any::<bool>()) {
        let batch: Vec<((u32, u32), e2eprof_timeseries::RleSeries)> = entries
            .into_iter()
            .map(|(key, (start, values))| (key, dense(start, values).to_sparse().to_rle()))
            .collect();
        let decoded = wire::decode_batch(&wire::encode_batch(&batch, int_amp))
            .expect("round trip");
        prop_assert_eq!(decoded.len(), batch.len());
        for ((dk, ds), (ek, es)) in decoded.iter().zip(batch.iter()) {
            prop_assert_eq!(dk, ek);
            prop_assert_eq!(ds, es);
            // PartialEq on f64 conflates -0.0/0.0 and would pass NaN-free
            // near-misses; the wire contract is bit-for-bit.
            for (dr, er) in ds.runs().iter().zip(es.runs()) {
                prop_assert_eq!(dr.value().to_bits(), er.value().to_bits());
            }
        }
    }

    /// Re-encoding a decoded v1 series as a v2 batch and decoding it again
    /// yields the exact same series, bit for bit — upgrading the wire
    /// mid-stream cannot perturb the analyzer's inputs.
    #[test]
    fn wire_v2_reencode_of_v1_is_bitwise_equal(
        (start, values) in signal_strategy(),
        int_amp in any::<bool>(),
    ) {
        let r = dense(start, values).to_sparse().to_rle();
        let via_v1 = wire::decode(&wire::encode(&r)).expect("v1 round trip");
        let batch = wire::encode_batch(&[((7u32, 3u32), via_v1.clone())], int_amp);
        let mut via_v2 = wire::decode_batch(&batch).expect("v2 round trip");
        prop_assert_eq!(via_v2.len(), 1);
        let ((src, dst), series) = via_v2.pop().unwrap();
        prop_assert_eq!((src, dst), (7, 3));
        prop_assert_eq!(&series, &via_v1);
        for (a, b) in series.runs().iter().zip(via_v1.runs()) {
            prop_assert_eq!(a.value().to_bits(), b.value().to_bits());
        }
    }
}

/// The pre-deque [`SlidingWindow`]: one owned [`RleSeries`] that is
/// re-sliced (i.e. rebuilt) on every append. Kept verbatim as the
/// reference model for the amortized run-deque rewrite.
struct SliceWindow {
    capacity: u64,
    series: Option<e2eprof_timeseries::RleSeries>,
}

impl SliceWindow {
    fn new(capacity: u64) -> Self {
        SliceWindow {
            capacity,
            series: None,
        }
    }

    fn trim(&mut self) {
        let Some(series) = &mut self.series else {
            return;
        };
        let len = series.end() - series.start();
        if len > self.capacity {
            let new_start = Tick::new(series.end().index() - self.capacity);
            *series = series.slice(new_start, series.end());
        }
    }

    fn append_or_reset(&mut self, chunk: &e2eprof_timeseries::RleSeries) -> bool {
        let Some(series) = &mut self.series else {
            self.series = Some(chunk.clone());
            self.trim();
            return false;
        };
        if chunk.start() > series.end() {
            self.series = Some(chunk.clone());
            return true;
        }
        if chunk.end() <= series.end() {
            return false;
        }
        let novel = chunk.slice(series.end(), chunk.end());
        series.append_chunk(&novel);
        self.trim();
        false
    }

    fn start(&self) -> Tick {
        self.series.as_ref().map_or(Tick::ZERO, |s| s.start())
    }

    fn end(&self) -> Tick {
        self.series.as_ref().map_or(Tick::ZERO, |s| s.end())
    }

    fn series(&self) -> e2eprof_timeseries::RleSeries {
        self.series
            .clone()
            .unwrap_or_else(|| e2eprof_timeseries::RleSeries::empty(Tick::ZERO, 0))
    }
}

proptest! {
    /// The run-deque [`SlidingWindow`] must be indistinguishable from the
    /// slice-based implementation it replaced — same span, same healed
    /// flags, and structurally identical `series()` (run boundaries and
    /// bit-exact values, not just pointwise equality) — under arbitrary
    /// mixtures of contiguous appends, stream gaps, and replays.
    #[test]
    fn sliding_window_deque_matches_slice_reference(
        cap in 5u64..60,
        ops in prop::collection::vec(
            (
                0u8..10,  // <6: contiguous, <8: gap, else: replay
                1u64..25, // gap / replay distance (and the first origin)
                prop::collection::vec(
                    prop_oneof![
                        2 => Just(0.0f64),
                        1 => (1u32..5).prop_map(|c| (c as f64).sqrt()),
                    ],
                    1..30,
                ),
            ),
            1..40,
        ),
    ) {
        use e2eprof_timeseries::window::SlidingWindow;
        let mut new = SlidingWindow::new(cap);
        let mut old = SliceWindow::new(cap);
        for (mode, dist, cv) in ops {
            let end = old.end().index();
            let cs = if old.series.is_none() {
                dist
            } else if mode < 6 {
                end
            } else if mode < 8 {
                end + dist
            } else {
                end.saturating_sub(dist)
            };
            let chunk = DenseSeries::new(Tick::new(cs), cv).to_sparse().to_rle();
            prop_assert_eq!(new.append_or_reset(&chunk), old.append_or_reset(&chunk));
            prop_assert_eq!(new.start(), old.start());
            prop_assert_eq!(new.end(), old.end());
            let (ns, os) = (new.series(), old.series());
            prop_assert_eq!(&ns, &os);
            for (a, b) in ns.runs().iter().zip(os.runs()) {
                prop_assert_eq!(a.start(), b.start());
                prop_assert_eq!(a.len(), b.len());
                prop_assert_eq!(a.value().to_bits(), b.value().to_bits());
            }
        }
    }
}

proptest! {
    /// Decoding arbitrary bytes must never panic — only return errors.
    #[test]
    fn wire_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = wire::decode(&bytes);
    }

    /// Corrupting any single byte of a valid frame either still decodes
    /// (value fields) or errors — never panics.
    #[test]
    fn wire_single_byte_corruption_is_safe(
        (start, values) in signal_strategy(),
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let r = dense(start, values).to_sparse().to_rle();
        let mut frame = wire::encode(&r).to_vec();
        prop_assume!(!frame.is_empty());
        let pos = ((frame.len() - 1) as f64 * pos_frac) as usize;
        frame[pos] ^= xor;
        let _ = wire::decode(&frame);
    }
}

proptest! {
    /// The change-epoch contract the analyzer's activity gate stands on:
    /// an unchanged epoch across any run of appends certifies that the
    /// retained nonzero runs are **bitwise identical at identical
    /// absolute ticks** to when the epoch was read, and `has_runs_in`
    /// agrees with a brute-force scan of the retained series. Together
    /// these let a refresh prove a boundary region stayed all-zero for a
    /// whole inter-refresh period without replaying the stream.
    #[test]
    fn window_epoch_certifies_unchanged_content(
        chunks in prop::collection::vec(signal_strategy(), 1..12),
        capacity in 10u64..150,
        probe in prop::collection::vec((0u64..400, 0u64..100), 1..8),
    ) {
        use e2eprof_timeseries::window::SlidingWindow;
        let cells = |w: &SlidingWindow| -> Vec<(u64, u64)> {
            let s = w.series();
            (s.start().index()..s.end().index())
                .map(|t| (t, s.value_at(Tick::new(t)).to_bits()))
                .filter(|&(_, bits)| bits != 0.0f64.to_bits())
                .collect()
        };
        let mut w = SlidingWindow::new(capacity);
        let mut prev_epoch = w.epoch();
        let mut prev_cells = cells(&w);
        for (_, values) in chunks {
            let chunk = DenseSeries::new(w.end(), values).to_sparse().to_rle();
            let had_content = !chunk.runs().is_empty();
            w.append_chunk(&chunk);
            let now_cells = cells(&w);
            if w.epoch() == prev_epoch {
                // Nothing may have entered or left retention.
                prop_assert_eq!(&now_cells, &prev_cells, "epoch stable but content moved");
                prop_assert!(!had_content, "nonzero chunk left the epoch unchanged");
            }
            if now_cells != prev_cells {
                prop_assert!(w.epoch() > prev_epoch, "content moved without an epoch bump");
            }
            prev_epoch = w.epoch();
            prev_cells = now_cells;
            // has_runs_in must agree with a brute-force scan everywhere.
            for &(from, len) in &probe {
                let (a, b) = (Tick::new(from), Tick::new(from + len));
                let brute = prev_cells.iter().any(|&(t, _)| a.index() <= t && t < b.index());
                prop_assert_eq!(w.has_runs_in(a, b), brute, "has_runs_in({}, {})", from, from + len);
            }
        }
    }
}
