//! Aggregate statistics of a series over a logical window length.
//!
//! Sparse and RLE series omit zero entries, but correlation normalization
//! (Eq. 1 of the paper) needs moments *over the whole window*, zeros
//! included. [`SeriesStats`] therefore carries the sum and sum of squares of
//! the stored entries plus the logical window length `n`, so means and
//! variances are computed as if the zeros were present.

use serde::{Deserialize, Serialize};

/// First and second moments of a signal over a logical window of `n` ticks.
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::SeriesStats;
/// // Signal [2, 0, 0, 2] over a 4-tick window, stored sparsely.
/// let stats = SeriesStats::from_entries([2.0, 2.0], 4);
/// assert_eq!(stats.mean(), 1.0);
/// assert_eq!(stats.variance(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SeriesStats {
    n: u64,
    sum: f64,
    sum_sq: f64,
}

impl SeriesStats {
    /// Accumulates stats from the non-zero entries of a signal whose logical
    /// window spans `window_len` ticks.
    pub fn from_entries<I: IntoIterator<Item = f64>>(entries: I, window_len: u64) -> Self {
        let mut s = SeriesStats {
            n: window_len,
            sum: 0.0,
            sum_sq: 0.0,
        };
        for v in entries {
            s.sum += v;
            s.sum_sq += v * v;
        }
        s
    }

    /// Creates stats directly from precomputed moments.
    pub fn from_moments(window_len: u64, sum: f64, sum_sq: f64) -> Self {
        SeriesStats {
            n: window_len,
            sum,
            sum_sq,
        }
    }

    /// The logical window length in ticks (zeros included).
    pub fn window_len(&self) -> u64 {
        self.n
    }

    /// Sum of all values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sum of squared values.
    pub fn sum_sq(&self) -> f64 {
        self.sum_sq
    }

    /// Mean over the logical window (zero for an empty window).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Population variance over the logical window.
    ///
    /// Clamped at zero to absorb floating-point cancellation.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sum_sq / self.n as f64 - mean * mean).max(0.0)
    }

    /// Population standard deviation over the logical window.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// `Σ (x_i − x̄)²` over the logical window — the energy of the centered
    /// signal, the quantity appearing in Eq. 1's denominator.
    pub fn centered_energy(&self) -> f64 {
        self.variance() * self.n as f64
    }

    /// Merges two stats over disjoint stretches of the same signal.
    pub fn merge(&self, other: &SeriesStats) -> SeriesStats {
        SeriesStats {
            n: self.n + other.n,
            sum: self.sum + other.sum,
            sum_sq: self.sum_sq + other.sum_sq,
        }
    }
}

/// Streaming mean/std accumulator for scalar observations (used for delay
/// histories and report summaries; not window-based).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (zero if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (zero if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0)
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_dense_computation() {
        // signal: [3, 0, 1, 0, 0] -> n=5
        let stats = SeriesStats::from_entries([3.0, 1.0], 5);
        let dense = [3.0, 0.0, 1.0, 0.0, 0.0];
        let mean: f64 = dense.iter().sum::<f64>() / 5.0;
        let var: f64 = dense.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / 5.0;
        assert!((stats.mean() - mean).abs() < 1e-12);
        assert!((stats.variance() - var).abs() < 1e-12);
        assert!((stats.centered_energy() - var * 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_window_is_zero() {
        let stats = SeriesStats::from_entries([], 0);
        assert_eq!(stats.mean(), 0.0);
        assert_eq!(stats.variance(), 0.0);
        assert_eq!(stats.std_dev(), 0.0);
    }

    #[test]
    fn merge_is_concatenation() {
        let a = SeriesStats::from_entries([1.0, 2.0], 4);
        let b = SeriesStats::from_entries([3.0], 2);
        let merged = a.merge(&b);
        let direct = SeriesStats::from_entries([1.0, 2.0, 3.0], 6);
        assert_eq!(merged, direct);
    }

    #[test]
    fn variance_never_negative() {
        // Constant signal has zero variance; cancellation must not push it below.
        let stats = SeriesStats::from_entries(std::iter::repeat_n(0.1, 1000), 1000);
        assert!(stats.variance() >= 0.0);
        assert!(stats.variance() < 1e-12);
    }

    #[test]
    fn welford_matches_direct() {
        let xs = [4.0, 7.0, 13.0, 16.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 4);
        assert!((w.mean() - 10.0).abs() < 1e-12);
        let var = xs.iter().map(|x| (x - 10.0) * (x - 10.0)).sum::<f64>() / 4.0;
        assert!((w.variance() - var).abs() < 1e-9);
    }

    #[test]
    fn welford_single_observation() {
        let mut w = Welford::new();
        w.push(5.0);
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.variance(), 0.0);
    }
}
