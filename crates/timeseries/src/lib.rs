//! Time-series primitives for the E2EProf toolkit.
//!
//! This crate implements the signal-representation layer of E2EProf
//! (Agarwala et al., DSN 2007): the conversion of raw, timestamped message
//! traces into *density time series*, and the compact representations that
//! make online cross-correlation analysis cheap:
//!
//! * [`density::DensityEstimator`] — converts a stream of message timestamps
//!   into the paper's density function `d(i) = sqrt(#messages within the
//!   rectangular sampling window around tick i)` (Section 3.5).
//! * [`DenseSeries`] — a plain contiguous signal (the "no compression"
//!   representation).
//! * [`SparseSeries`] — zero-suppressed entries `(t, n)` (the "burst
//!   compression" representation: quiet regions are simply absent).
//! * [`RleSeries`] — run-length-encoded 3-tuples `(t, c, n)` (the "RLE
//!   compression" representation used by the online pathmap algorithm).
//! * [`window::SlidingWindow`] — the most recent `W`-sized window of a
//!   signal, refreshed every `ΔW` (Algorithm 1's input buffers).
//! * [`wire`] — a compact byte encoding used to stream RLE series from
//!   tracer agents on service nodes to the central analyzer.
//!
//! All series are indexed by [`Tick`]s of the configured time quantum `τ`
//! ([`Quanta`]); wall-clock nanoseconds ([`Nanos`]) appear only at the
//! boundaries of the system. Integer tick indexing keeps windowing exact and
//! makes run-length encoding well-defined.
//!
//! # Example
//!
//! ```
//! use e2eprof_timeseries::{Quanta, Nanos, density::DensityEstimator};
//!
//! // 1 ms quanta, 5 ms sampling window.
//! let quanta = Quanta::from_millis(1);
//! let mut est = DensityEstimator::new(quanta, 5);
//! for ms in [10u64, 10, 11, 40] {
//!     est.push(Nanos::from_millis(ms));
//! }
//! let series = est.finish();
//! // Three messages near t=10ms produce sqrt(3) density at tick 10.
//! assert!((series.value_at(10.into()) - 3f64.sqrt()).abs() < 1e-12);
//! // The quiet zone between the bursts is not stored at all.
//! assert_eq!(series.value_at(25.into()), 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod density;
pub mod pyramid;
pub mod rle;
pub mod sparse;
pub mod stats;
pub mod time;
pub mod window;
pub mod wire;

pub use dense::DenseSeries;
pub use rle::{RleSeries, Run};
pub use sparse::{SparseEntry, SparseSeries};
pub use stats::SeriesStats;
pub use time::{Nanos, Quanta, Tick};
