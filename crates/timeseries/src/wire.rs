//! Wire encoding for streaming RLE series from tracers to the analyzer.
//!
//! The paper's `tracer` kernel module streams RLE-encoded time series from
//! each service node to a central analysis node. This module provides the
//! equivalent byte format: a small header followed by fixed-width run
//! records. The format is versioned and length-checked so a truncated or
//! corrupt stream is detected rather than misparsed.

use crate::rle::{RleSeries, Run};
use crate::time::Tick;
use bytes::{Buf, Bytes};
use std::error::Error;
use std::fmt;

/// Format version byte; bump on incompatible changes.
const WIRE_VERSION: u8 = 1;
/// Magic prefix identifying an E2EProf series frame.
const WIRE_MAGIC: &[u8; 4] = b"E2EP";

/// Errors produced when decoding a series frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The frame does not begin with the expected magic bytes.
    BadMagic,
    /// The frame uses an unsupported format version.
    UnsupportedVersion(u8),
    /// The frame ended before the declared content.
    Truncated,
    /// The decoded runs violate series invariants (overlap / out of span).
    Corrupt(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "frame does not start with E2EP magic"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::Truncated => write!(f, "frame truncated before declared content"),
            DecodeError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
        }
    }
}

impl Error for DecodeError {}

/// Encodes a series into a self-describing byte frame.
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::{wire, RleSeries, Run, Tick};
/// let series = RleSeries::from_parts(Tick::new(3), 10, vec![Run::new(Tick::new(4), 2, 1.5)]);
/// let frame = wire::encode(&series);
/// let back = wire::decode(&frame)?;
/// assert_eq!(back, series);
/// # Ok::<(), wire::DecodeError>(())
/// ```
pub fn encode(series: &RleSeries) -> Bytes {
    let mut buf = Vec::new();
    encode_into(series, &mut buf);
    Bytes::from(buf)
}

/// Encodes a series into `out`, clearing it first.
///
/// Byte-for-byte identical to [`encode`]; exists so tracer agents can reuse
/// one frame buffer per flush instead of allocating a fresh frame per
/// series.
pub fn encode_into(series: &RleSeries, out: &mut Vec<u8>) {
    out.clear();
    out.reserve(4 + 1 + 8 + 8 + 4 + series.num_runs() * 20);
    out.extend_from_slice(WIRE_MAGIC);
    out.push(WIRE_VERSION);
    out.extend_from_slice(&series.start().index().to_be_bytes());
    out.extend_from_slice(&series.len().to_be_bytes());
    out.extend_from_slice(&(series.num_runs() as u32).to_be_bytes());
    for r in series.runs() {
        out.extend_from_slice(&r.start().index().to_be_bytes());
        out.extend_from_slice(
            &u32::try_from(r.len())
                .expect("run length exceeds u32")
                .to_be_bytes(),
        );
        out.extend_from_slice(&r.value().to_be_bytes());
    }
}

/// Decodes a byte frame produced by [`encode`].
///
/// # Errors
///
/// Returns a [`DecodeError`] if the frame is malformed, truncated, or
/// violates series invariants.
pub fn decode(mut frame: &[u8]) -> Result<RleSeries, DecodeError> {
    if frame.remaining() < 5 {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 4];
    frame.copy_to_slice(&mut magic);
    if &magic != WIRE_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = frame.get_u8();
    if version != WIRE_VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    if frame.remaining() < 20 {
        return Err(DecodeError::Truncated);
    }
    let start = Tick::new(frame.get_u64());
    let len = frame.get_u64();
    let num_runs = frame.get_u32() as usize;
    if frame.remaining() < num_runs * 20 {
        return Err(DecodeError::Truncated);
    }
    let mut runs = Vec::with_capacity(num_runs);
    let mut prev_end: Option<u64> = None;
    for _ in 0..num_runs {
        let rs = frame.get_u64();
        let rl = frame.get_u32() as u64;
        let rv = frame.get_f64();
        if rl == 0 {
            return Err(DecodeError::Corrupt("zero-length run"));
        }
        if rv == 0.0 || !rv.is_finite() {
            return Err(DecodeError::Corrupt("zero or non-finite run value"));
        }
        if rs < start.index() || rs + rl > start.index() + len {
            return Err(DecodeError::Corrupt("run outside declared span"));
        }
        if let Some(pe) = prev_end {
            if rs < pe {
                return Err(DecodeError::Corrupt("runs overlap or out of order"));
            }
        }
        prev_end = Some(rs + rl);
        runs.push(Run::new(Tick::new(rs), rl, rv));
    }
    Ok(RleSeries::from_parts(start, len, runs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RleSeries {
        RleSeries::from_parts(
            Tick::new(100),
            60,
            vec![
                Run::new(Tick::new(101), 5, 1.0),
                Run::new(Tick::new(120), 2, 2f64.sqrt()),
            ],
        )
    }

    #[test]
    fn round_trip() {
        let s = sample();
        assert_eq!(decode(&encode(&s)).unwrap(), s);
    }

    #[test]
    fn empty_series_round_trip() {
        let s = RleSeries::empty(Tick::new(7), 0);
        assert_eq!(decode(&encode(&s)).unwrap(), s);
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_buffer() {
        let s = sample();
        let mut buf = vec![0xAAu8; 3]; // stale contents must be cleared
        encode_into(&s, &mut buf);
        assert_eq!(&buf[..], &encode(&s)[..]);
        let cap = buf.capacity();
        encode_into(&RleSeries::empty(Tick::new(7), 0), &mut buf);
        assert_eq!(&buf[..], &encode(&RleSeries::empty(Tick::new(7), 0))[..]);
        assert_eq!(buf.capacity(), cap, "reuse must not shrink or reallocate");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut f = encode(&sample()).to_vec();
        f[0] = b'X';
        assert_eq!(decode(&f), Err(DecodeError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut f = encode(&sample()).to_vec();
        f[4] = 99;
        assert_eq!(decode(&f), Err(DecodeError::UnsupportedVersion(99)));
    }

    #[test]
    fn truncation_detected() {
        let f = encode(&sample());
        for cut in [0, 3, 8, 24, f.len() - 1] {
            assert_eq!(decode(&f[..cut]), Err(DecodeError::Truncated), "cut={cut}");
        }
    }

    #[test]
    fn corrupt_run_value_rejected() {
        let mut f = encode(&sample()).to_vec();
        // Overwrite the first run's value (offset 25 + 12) with NaN.
        let off = 25 + 12;
        f[off..off + 8].copy_from_slice(&f64::NAN.to_be_bytes());
        assert!(matches!(decode(&f), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn run_outside_span_rejected() {
        let mut f = encode(&sample()).to_vec();
        // Overwrite the first run's start tick with one past the span.
        let off = 25;
        f[off..off + 8].copy_from_slice(&999u64.to_be_bytes());
        assert!(matches!(decode(&f), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn display_messages_are_lowercase() {
        for e in [
            DecodeError::BadMagic,
            DecodeError::UnsupportedVersion(2),
            DecodeError::Truncated,
            DecodeError::Corrupt("x"),
        ] {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }
}
