//! Wire encoding for streaming RLE series from tracers to the analyzer.
//!
//! The paper's `tracer` kernel module streams RLE-encoded time series from
//! each service node to a central analysis node. This module provides the
//! equivalent byte formats. Two versions coexist behind the same magic:
//!
//! * **v1** — one series per frame: a small header followed by fixed-width
//!   20-byte run records ([`encode`] / [`decode`]).
//! * **v2** — one *batch* frame per tracer flush carrying every series the
//!   agent owns, with LEB128 varint lengths, delta-encoded run starts, and
//!   an optional lossless integer-count amplitude encoding ([`encode_batch`]
//!   / [`decode_batch`] / [`FrameCursor`]). Density amplitudes are `√n` for
//!   an integer message count `n`, so shipping the varint count and
//!   reconstructing `(n as f64).sqrt()` reproduces the float bit-for-bit in
//!   a few bytes instead of eight.
//!
//! Both formats are versioned and length-checked so a truncated or corrupt
//! stream is detected rather than misparsed; v1 frames keep decoding
//! unchanged.

use crate::rle::{RleSeries, Run};
use crate::time::Tick;
use bytes::{Buf, Bytes};
use std::error::Error;
use std::fmt;

/// Format version byte of the original one-series-per-frame format.
const WIRE_VERSION: u8 = 1;
/// Format version byte of the batched varint format.
const WIRE_VERSION_V2: u8 = 2;
/// Magic prefix identifying an E2EProf series frame.
const WIRE_MAGIC: &[u8; 4] = b"E2EP";
/// v2 flags-byte bit: run amplitudes use the integer-count encoding.
const FLAG_INT_AMP: u8 = 0b0000_0001;
/// v2 flags-byte bit: each entry header carries a decimation-level tag.
/// Level `0` is a fine series exactly as in an untagged frame; level `k > 0`
/// means the entry's span and runs are in *coarse* ticks of `k` fine ticks
/// each (the edge-side data-reduction path). Absent the flag, the frame is
/// byte-identical to the pre-reduction format.
const FLAG_LEVELS: u8 = 0b0000_0010;
/// Smallest possible encoded run: 1-byte gap + 1-byte length + 1-byte
/// amplitude code (integer-amplitude mode). Used to cap declared run
/// counts against the bytes actually present before any allocation.
const MIN_RUN_BYTES_INT_AMP: u64 = 3;
/// Smallest encoded run without integer amplitudes: 1 + 1 + 8 raw bytes.
const MIN_RUN_BYTES_RAW: u64 = 10;
/// Smallest encoded batch entry: five varints (src, dst, start, len,
/// num_runs), one byte each.
const MIN_ENTRY_BYTES: u64 = 5;

/// Errors produced when decoding a series frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The frame does not begin with the expected magic bytes.
    BadMagic,
    /// The frame uses an unsupported format version.
    UnsupportedVersion(u8),
    /// The frame ended before the declared content.
    Truncated,
    /// The decoded runs violate series invariants (overlap / out of span).
    Corrupt(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "frame does not start with E2EP magic"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::Truncated => write!(f, "frame truncated before declared content"),
            DecodeError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
        }
    }
}

impl Error for DecodeError {}

/// Encodes a series into a self-describing byte frame.
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::{wire, RleSeries, Run, Tick};
/// let series = RleSeries::from_parts(Tick::new(3), 10, vec![Run::new(Tick::new(4), 2, 1.5)]);
/// let frame = wire::encode(&series);
/// let back = wire::decode(&frame)?;
/// assert_eq!(back, series);
/// # Ok::<(), wire::DecodeError>(())
/// ```
pub fn encode(series: &RleSeries) -> Bytes {
    let mut buf = Vec::new();
    encode_into(series, &mut buf);
    Bytes::from(buf)
}

/// Encodes a series into `out`, clearing it first.
///
/// Byte-for-byte identical to [`encode`]; exists so tracer agents can reuse
/// one frame buffer per flush instead of allocating a fresh frame per
/// series.
pub fn encode_into(series: &RleSeries, out: &mut Vec<u8>) {
    out.clear();
    out.reserve(4 + 1 + 8 + 8 + 4 + series.num_runs() * 20);
    out.extend_from_slice(WIRE_MAGIC);
    out.push(WIRE_VERSION);
    out.extend_from_slice(&series.start().index().to_be_bytes());
    out.extend_from_slice(&series.len().to_be_bytes());
    out.extend_from_slice(&(series.num_runs() as u32).to_be_bytes());
    for r in series.runs() {
        out.extend_from_slice(&r.start().index().to_be_bytes());
        out.extend_from_slice(
            &u32::try_from(r.len())
                .expect("run length exceeds u32")
                .to_be_bytes(),
        );
        out.extend_from_slice(&r.value().to_be_bytes());
    }
}

/// Decodes a byte frame produced by [`encode`].
///
/// # Errors
///
/// Returns a [`DecodeError`] if the frame is malformed, truncated, or
/// violates series invariants.
pub fn decode(mut frame: &[u8]) -> Result<RleSeries, DecodeError> {
    if frame.remaining() < 5 {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 4];
    frame.copy_to_slice(&mut magic);
    if &magic != WIRE_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = frame.get_u8();
    if version != WIRE_VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    if frame.remaining() < 20 {
        return Err(DecodeError::Truncated);
    }
    let start = Tick::new(frame.get_u64());
    let len = frame.get_u64();
    let num_runs = frame.get_u32() as usize;
    if frame.remaining() < num_runs * 20 {
        return Err(DecodeError::Truncated);
    }
    let mut runs = Vec::with_capacity(num_runs);
    let mut prev_end: Option<u64> = None;
    for _ in 0..num_runs {
        let rs = frame.get_u64();
        let rl = frame.get_u32() as u64;
        let rv = frame.get_f64();
        if rl == 0 {
            return Err(DecodeError::Corrupt("zero-length run"));
        }
        if rv == 0.0 || !rv.is_finite() {
            return Err(DecodeError::Corrupt("zero or non-finite run value"));
        }
        if rs < start.index() || rs + rl > start.index() + len {
            return Err(DecodeError::Corrupt("run outside declared span"));
        }
        if let Some(pe) = prev_end {
            if rs < pe {
                return Err(DecodeError::Corrupt("runs overlap or out of order"));
            }
        }
        prev_end = Some(rs + rl);
        runs.push(Run::new(Tick::new(rs), rl, rv));
    }
    Ok(RleSeries::from_parts(start, len, runs))
}

/// Peeks the format version of a frame without decoding it.
///
/// # Errors
///
/// [`DecodeError::Truncated`] if the frame is shorter than the magic plus
/// version byte, [`DecodeError::BadMagic`] if the magic does not match.
/// Unknown versions are returned as-is — dispatchers decide what is
/// supported.
pub fn frame_version(frame: &[u8]) -> Result<u8, DecodeError> {
    if frame.len() < 5 {
        return Err(DecodeError::Truncated);
    }
    if &frame[..4] != WIRE_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    Ok(frame[4])
}

/// Appends `v` to `out` as an LEB128 varint (7 data bits per byte, low
/// bits first, high bit marks continuation).
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Reads one LEB128 varint, advancing the slice.
fn get_varint(buf: &mut &[u8]) -> Result<u64, DecodeError> {
    // Single-byte fast path: run gaps, lengths, and message counts are
    // almost always below 128, and decode sits on the ingest hot path.
    if let Some((&b, rest)) = buf.split_first() {
        if b & 0x80 == 0 {
            *buf = rest;
            return Ok(b as u64);
        }
    }
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some((&b, rest)) = buf.split_first() else {
            return Err(DecodeError::Truncated);
        };
        *buf = rest;
        let bits = (b & 0x7f) as u64;
        if shift == 63 && bits > 1 {
            return Err(DecodeError::Corrupt("varint overflows u64"));
        }
        v |= bits << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeError::Corrupt("varint longer than ten bytes"));
        }
    }
}

/// The integer-count amplitude code for `value`, if lossless: the `n ≥ 1`
/// with `(n as f64).sqrt()` bit-identical to `value`. Density amplitudes
/// are √(message count), so this hits for every value the estimator emits.
fn int_amp_code(value: f64) -> Option<u64> {
    if value.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return None; // zero, negative, or NaN
    }
    let n = (value * value).round();
    if !(1.0..=9.007_199_254_740_992e15).contains(&n) {
        return None; // zero, or beyond f64's exact-integer range (2^53)
    }
    let n = n as u64;
    if (n as f64).sqrt().to_bits() == value.to_bits() {
        Some(n)
    } else {
        None
    }
}

/// Encodes a batch of keyed series into one v2 frame.
///
/// `entries` carry an opaque `(u32, u32)` key per series (the analyzer
/// uses directed-edge node indices); with `int_amp`, amplitudes that are
/// exactly `√n` for integer `n` ship as the varint count.
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::{wire, RleSeries, Run, Tick};
/// let s = RleSeries::from_parts(Tick::new(3), 10, vec![Run::new(Tick::new(4), 2, 2f64.sqrt())]);
/// let frame = wire::encode_batch(&[((0, 1), s.clone())], true);
/// let back = wire::decode_batch(&frame)?;
/// assert_eq!(back, vec![((0, 1), s)]);
/// # Ok::<(), wire::DecodeError>(())
/// ```
pub fn encode_batch<S: std::borrow::Borrow<RleSeries>>(
    entries: &[((u32, u32), S)],
    int_amp: bool,
) -> Bytes {
    let mut buf = Vec::new();
    encode_batch_into(entries, int_amp, &mut buf);
    Bytes::from(buf)
}

/// Encodes a batch into `out`, clearing it first (byte-for-byte identical
/// to [`encode_batch`]); exists so tracer agents can reuse one frame
/// buffer per flush.
pub fn encode_batch_into<S: std::borrow::Borrow<RleSeries>>(
    entries: &[((u32, u32), S)],
    int_amp: bool,
    out: &mut Vec<u8>,
) {
    out.clear();
    out.extend_from_slice(WIRE_MAGIC);
    out.push(WIRE_VERSION_V2);
    out.push(if int_amp { FLAG_INT_AMP } else { 0 });
    put_varint(out, entries.len() as u64);
    for ((src, dst), series) in entries {
        put_entry(out, (*src, *dst), None, series.borrow(), int_amp);
    }
}

/// Encodes one batch entry: the header varints followed by the runs.
/// `level: Some(l)` emits the decimation-level tag of a [`FLAG_LEVELS`]
/// frame; `None` emits the untagged (pre-reduction) header.
fn put_entry(
    out: &mut Vec<u8>,
    key: (u32, u32),
    level: Option<u64>,
    series: &RleSeries,
    int_amp: bool,
) {
    put_varint(out, u64::from(key.0));
    put_varint(out, u64::from(key.1));
    if let Some(l) = level {
        put_varint(out, l);
    }
    put_varint(out, series.start().index());
    put_varint(out, series.len());
    put_varint(out, series.num_runs() as u64);
    let mut prev_end = series.start().index();
    for r in series.runs() {
        put_varint(out, r.start().index() - prev_end);
        put_varint(out, r.len());
        prev_end = r.end().index();
        match int_amp_code(r.value()).filter(|_| int_amp) {
            Some(n) => put_varint(out, n),
            None => {
                if int_amp {
                    put_varint(out, 0); // escape: raw f64 follows
                }
                out.extend_from_slice(&r.value().to_be_bytes());
            }
        }
    }
}

/// Encodes a batch whose entries carry a per-series decimation level into
/// one v2 frame with the `FLAG_LEVELS` tag set.
///
/// Level `0` entries are fine series (spans and runs in fine ticks);
/// level `k > 0` entries are coarse images whose span and runs are in
/// coarse ticks of `k` fine ticks each. Only the reduction-aware tracer
/// path emits this form — untagged frames stay byte-identical to the
/// pre-reduction encoder, and decoders that predate the flag reject the
/// tagged frame outright instead of misreading coarse ticks as fine.
pub fn encode_batch_leveled<S: std::borrow::Borrow<RleSeries>>(
    entries: &[((u32, u32), u64, S)],
    int_amp: bool,
) -> Bytes {
    let mut buf = Vec::new();
    encode_batch_leveled_into(entries, int_amp, &mut buf);
    Bytes::from(buf)
}

/// Encodes a leveled batch into `out`, clearing it first (byte-for-byte
/// identical to [`encode_batch_leveled`]).
pub fn encode_batch_leveled_into<S: std::borrow::Borrow<RleSeries>>(
    entries: &[((u32, u32), u64, S)],
    int_amp: bool,
    out: &mut Vec<u8>,
) {
    out.clear();
    out.extend_from_slice(WIRE_MAGIC);
    out.push(WIRE_VERSION_V2);
    out.push(if int_amp { FLAG_INT_AMP } else { 0 } | FLAG_LEVELS);
    put_varint(out, entries.len() as u64);
    for (key, level, series) in entries {
        put_entry(out, *key, Some(*level), series.borrow(), int_amp);
    }
}

/// Header of one series inside a v2 batch frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchEntry {
    /// The opaque series key (the analyzer's directed-edge node indices).
    pub key: (u32, u32),
    /// Decimation level: `0` for a fine series, `k > 0` when the entry's
    /// span and runs are in coarse ticks of `k` fine ticks each. Always
    /// `0` in frames without the level tag.
    pub level: u64,
    /// First tick of the series span (coarse ticks when `level > 0`).
    pub start: Tick,
    /// Span length in ticks (coarse ticks when `level > 0`).
    pub len: u64,
    /// Number of runs that follow, already capped against the bytes
    /// actually remaining in the frame.
    pub num_runs: u64,
}

impl BatchEntry {
    /// One past the last tick of the series span.
    pub fn end(&self) -> Tick {
        self.start + self.len
    }
}

/// A validating zero-copy cursor over a v2 batch frame.
///
/// Walks entry headers and runs directly off the frame bytes without
/// materializing intermediate [`RleSeries`] — the analyzer streams
/// [`next_run`](FrameCursor::next_run) straight into
/// [`SlidingWindow::extend_runs`](crate::window::SlidingWindow::extend_runs).
/// Every run is validated exactly as strictly as the v1 decoder (non-zero
/// length, finite non-zero value, inside the declared span; overlap is
/// structurally impossible since run starts are gap-encoded). Declared
/// counts are capped against the remaining frame length before any use, so
/// a corrupt frame can never trigger an outsized allocation downstream.
#[derive(Debug, Clone)]
pub struct FrameCursor<'a> {
    buf: &'a [u8],
    int_amp: bool,
    /// Entry headers carry a decimation-level tag ([`FLAG_LEVELS`]).
    levels: bool,
    /// Entries not yet returned by `next_entry`.
    entries_left: u64,
    /// Runs of the current entry not yet returned by `next_run`.
    runs_left: u64,
    span_end: u64,
    prev_end: u64,
}

impl<'a> FrameCursor<'a> {
    /// Opens a cursor over `frame`, validating the v2 header.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on a bad magic, a version other than 2,
    /// unknown flag bits, or a truncated header.
    pub fn new(frame: &'a [u8]) -> Result<Self, DecodeError> {
        let version = frame_version(frame)?;
        if version != WIRE_VERSION_V2 {
            return Err(DecodeError::UnsupportedVersion(version));
        }
        let mut buf = &frame[5..];
        let Some((&flags, rest)) = buf.split_first() else {
            return Err(DecodeError::Truncated);
        };
        buf = rest;
        if flags & !(FLAG_INT_AMP | FLAG_LEVELS) != 0 {
            return Err(DecodeError::Corrupt("unknown flag bits"));
        }
        let entries_left = get_varint(&mut buf)?;
        if entries_left
            .checked_mul(MIN_ENTRY_BYTES)
            .is_none_or(|need| need > buf.len() as u64)
        {
            return Err(DecodeError::Truncated);
        }
        Ok(FrameCursor {
            buf,
            int_amp: flags & FLAG_INT_AMP != 0,
            levels: flags & FLAG_LEVELS != 0,
            entries_left,
            runs_left: 0,
            span_end: 0,
            prev_end: 0,
        })
    }

    /// Whether amplitudes use the integer-count encoding.
    pub fn int_amp(&self) -> bool {
        self.int_amp
    }

    /// Entries not yet returned by [`next_entry`](Self::next_entry).
    pub fn entries_remaining(&self) -> u64 {
        self.entries_left
    }

    /// Advances to the next series header, first draining (and validating)
    /// any unread runs of the current entry. Returns `None` after the last
    /// entry — at which point any trailing garbage is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the frame is truncated or any skipped
    /// run is invalid.
    pub fn next_entry(&mut self) -> Result<Option<BatchEntry>, DecodeError> {
        while self.runs_left > 0 {
            self.next_run()?;
        }
        if self.entries_left == 0 {
            if !self.buf.is_empty() {
                return Err(DecodeError::Corrupt("trailing bytes after last series"));
            }
            return Ok(None);
        }
        self.entries_left -= 1;
        let src = get_varint(&mut self.buf)?;
        let dst = get_varint(&mut self.buf)?;
        let key = (
            u32::try_from(src).map_err(|_| DecodeError::Corrupt("series key exceeds u32"))?,
            u32::try_from(dst).map_err(|_| DecodeError::Corrupt("series key exceeds u32"))?,
        );
        let level = if self.levels {
            let l = get_varint(&mut self.buf)?;
            if l > u64::from(u32::MAX) {
                return Err(DecodeError::Corrupt("decimation level exceeds u32"));
            }
            l
        } else {
            0
        };
        let start = get_varint(&mut self.buf)?;
        let len = get_varint(&mut self.buf)?;
        let num_runs = get_varint(&mut self.buf)?;
        let span_end = start
            .checked_add(len)
            .ok_or(DecodeError::Corrupt("series span overflows"))?;
        let min_run_bytes = if self.int_amp {
            MIN_RUN_BYTES_INT_AMP
        } else {
            MIN_RUN_BYTES_RAW
        };
        if num_runs
            .checked_mul(min_run_bytes)
            .is_none_or(|need| need > self.buf.len() as u64)
        {
            return Err(DecodeError::Truncated);
        }
        self.runs_left = num_runs;
        self.span_end = span_end;
        self.prev_end = start;
        Ok(Some(BatchEntry {
            key,
            level,
            start: Tick::new(start),
            len,
            num_runs,
        }))
    }

    /// Decodes the next run of the current entry; `None` once the entry's
    /// declared runs are exhausted.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the frame is truncated or the run
    /// violates series invariants.
    pub fn next_run(&mut self) -> Result<Option<Run>, DecodeError> {
        if self.runs_left == 0 {
            return Ok(None);
        }
        let gap = get_varint(&mut self.buf)?;
        let len = get_varint(&mut self.buf)?;
        if len == 0 {
            return Err(DecodeError::Corrupt("zero-length run"));
        }
        let run_start = self
            .prev_end
            .checked_add(gap)
            .ok_or(DecodeError::Corrupt("run outside declared span"))?;
        let run_end = run_start
            .checked_add(len)
            .ok_or(DecodeError::Corrupt("run outside declared span"))?;
        if run_end > self.span_end {
            return Err(DecodeError::Corrupt("run outside declared span"));
        }
        let value = if self.int_amp {
            match get_varint(&mut self.buf)? {
                0 => self.get_raw_f64()?,
                n => (n as f64).sqrt(),
            }
        } else {
            self.get_raw_f64()?
        };
        if value == 0.0 || !value.is_finite() {
            return Err(DecodeError::Corrupt("zero or non-finite run value"));
        }
        self.runs_left -= 1;
        self.prev_end = run_end;
        Ok(Some(Run::new(Tick::new(run_start), len, value)))
    }

    fn get_raw_f64(&mut self) -> Result<f64, DecodeError> {
        if self.buf.remaining() < 8 {
            return Err(DecodeError::Truncated);
        }
        Ok(self.buf.get_f64())
    }
}

/// Decodes a v2 batch frame into owned keyed series.
///
/// The fully-materialized contents of a v2 batch frame: one keyed series
/// per entry, in frame order.
pub type DecodedBatch = Vec<((u32, u32), RleSeries)>;

/// The streaming ingest path uses [`FrameCursor`] directly; this
/// materializing form serves tests, tools, and the screening tier's
/// decimated twin.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the frame is malformed, truncated, or any
/// series violates its invariants.
pub fn decode_batch(frame: &[u8]) -> Result<DecodedBatch, DecodeError> {
    decode_batch_leveled(frame)?
        .into_iter()
        .map(|(key, level, series)| {
            if level != 0 {
                // A coarse entry misread as fine ticks would silently
                // stretch time by `k`; force callers onto the leveled API.
                return Err(DecodeError::Corrupt("leveled entry in unleveled decode"));
            }
            Ok((key, series))
        })
        .collect()
}

/// The fully-materialized contents of a leveled v2 batch frame: one
/// `(key, level, series)` triple per entry, in frame order.
pub type DecodedLeveledBatch = Vec<((u32, u32), u64, RleSeries)>;

/// Decodes a v2 batch frame, keeping each entry's decimation level
/// (`0` for every entry of an untagged frame).
///
/// # Errors
///
/// Returns a [`DecodeError`] if the frame is malformed, truncated, or any
/// series violates its invariants.
pub fn decode_batch_leveled(frame: &[u8]) -> Result<DecodedLeveledBatch, DecodeError> {
    let mut cursor = FrameCursor::new(frame)?;
    let mut out = Vec::with_capacity(cursor.entries_remaining() as usize);
    while let Some(entry) = cursor.next_entry()? {
        let mut runs = Vec::with_capacity(entry.num_runs as usize);
        while let Some(run) = cursor.next_run()? {
            runs.push(run);
        }
        out.push((
            entry.key,
            entry.level,
            RleSeries::from_parts(entry.start, entry.len, runs),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RleSeries {
        RleSeries::from_parts(
            Tick::new(100),
            60,
            vec![
                Run::new(Tick::new(101), 5, 1.0),
                Run::new(Tick::new(120), 2, 2f64.sqrt()),
            ],
        )
    }

    #[test]
    fn round_trip() {
        let s = sample();
        assert_eq!(decode(&encode(&s)).unwrap(), s);
    }

    #[test]
    fn empty_series_round_trip() {
        let s = RleSeries::empty(Tick::new(7), 0);
        assert_eq!(decode(&encode(&s)).unwrap(), s);
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_buffer() {
        let s = sample();
        let mut buf = vec![0xAAu8; 3]; // stale contents must be cleared
        encode_into(&s, &mut buf);
        assert_eq!(&buf[..], &encode(&s)[..]);
        let cap = buf.capacity();
        encode_into(&RleSeries::empty(Tick::new(7), 0), &mut buf);
        assert_eq!(&buf[..], &encode(&RleSeries::empty(Tick::new(7), 0))[..]);
        assert_eq!(buf.capacity(), cap, "reuse must not shrink or reallocate");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut f = encode(&sample()).to_vec();
        f[0] = b'X';
        assert_eq!(decode(&f), Err(DecodeError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut f = encode(&sample()).to_vec();
        f[4] = 99;
        assert_eq!(decode(&f), Err(DecodeError::UnsupportedVersion(99)));
    }

    #[test]
    fn truncation_detected() {
        let f = encode(&sample());
        for cut in [0, 3, 8, 24, f.len() - 1] {
            assert_eq!(decode(&f[..cut]), Err(DecodeError::Truncated), "cut={cut}");
        }
    }

    #[test]
    fn corrupt_run_value_rejected() {
        let mut f = encode(&sample()).to_vec();
        // Overwrite the first run's value (offset 25 + 12) with NaN.
        let off = 25 + 12;
        f[off..off + 8].copy_from_slice(&f64::NAN.to_be_bytes());
        assert!(matches!(decode(&f), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn run_outside_span_rejected() {
        let mut f = encode(&sample()).to_vec();
        // Overwrite the first run's start tick with one past the span.
        let off = 25;
        f[off..off + 8].copy_from_slice(&999u64.to_be_bytes());
        assert!(matches!(decode(&f), Err(DecodeError::Corrupt(_))));
    }

    fn batch() -> Vec<((u32, u32), RleSeries)> {
        vec![
            ((2, 0), sample()),
            ((0, 3), RleSeries::empty(Tick::new(160), 60)),
            (
                (7, 1),
                RleSeries::from_parts(
                    Tick::new(0),
                    40,
                    vec![
                        Run::new(Tick::new(0), 3, 5f64.sqrt()),
                        Run::new(Tick::new(10), 30, 1.0),
                    ],
                ),
            ),
        ]
    }

    #[test]
    fn batch_round_trip_with_and_without_int_amp() {
        let entries = batch();
        for int_amp in [false, true] {
            let frame = encode_batch(&entries, int_amp);
            assert_eq!(decode_batch(&frame).unwrap(), entries, "int_amp={int_amp}");
        }
    }

    #[test]
    fn int_amp_shrinks_sqrt_count_amplitudes() {
        let entries = batch();
        let plain = encode_batch(&entries, false);
        let packed = encode_batch(&entries, true);
        assert!(
            packed.len() < plain.len(),
            "int-amp frame not smaller: {} vs {}",
            packed.len(),
            plain.len()
        );
    }

    #[test]
    fn int_amp_escapes_non_count_values_losslessly() {
        // Values that are not √n for any integer n (including a negative
        // one) must survive the escape path bit-for-bit.
        let odd = RleSeries::from_parts(
            Tick::new(0),
            20,
            vec![
                Run::new(Tick::new(0), 2, 0.3),
                Run::new(Tick::new(5), 1, -2.5),
                Run::new(Tick::new(9), 4, 3.0), // √9: back on the count path
            ],
        );
        let frame = encode_batch(&[((1, 2), odd.clone())], true);
        let back = decode_batch(&frame).unwrap();
        assert_eq!(back.len(), 1);
        for (got, want) in back[0].1.runs().iter().zip(odd.runs()) {
            assert_eq!(got.value().to_bits(), want.value().to_bits());
        }
    }

    #[test]
    fn int_amp_code_matches_density_values() {
        // Every value the density estimator can emit is √n for a message
        // count n, and the code must reproduce it bit-for-bit.
        for n in [1u64, 2, 3, 9, 50, 12_345, u64::from(u32::MAX)] {
            let v = (n as f64).sqrt();
            assert_eq!(int_amp_code(v), Some(n), "n={n}");
        }
        assert_eq!(int_amp_code(0.0), None);
        assert_eq!(int_amp_code(-1.0), None);
        assert_eq!(int_amp_code(0.5), None);
        assert_eq!(int_amp_code(f64::NAN), None);
        assert_eq!(int_amp_code(1e300), None);
    }

    #[test]
    fn varint_round_trip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut cursor = &buf[..];
            assert_eq!(get_varint(&mut cursor), Ok(v));
            assert!(cursor.is_empty());
        }
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        // Ten continuation bytes with a final byte carrying >1 bit at
        // shift 63 overflows u64.
        let over = [0xffu8, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert!(matches!(
            get_varint(&mut &over[..]),
            Err(DecodeError::Corrupt(_))
        ));
        let trunc = [0x80u8, 0x80];
        assert_eq!(get_varint(&mut &trunc[..]), Err(DecodeError::Truncated));
    }

    #[test]
    fn frame_version_distinguishes_formats() {
        assert_eq!(frame_version(&encode(&sample())), Ok(1));
        assert_eq!(frame_version(&encode_batch(&batch(), true)), Ok(2));
        assert_eq!(frame_version(b"E2E"), Err(DecodeError::Truncated));
        assert_eq!(frame_version(b"XXXX\x02"), Err(DecodeError::BadMagic));
    }

    #[test]
    fn cursor_streams_runs_without_materializing() {
        let entries = batch();
        let frame = encode_batch(&entries, true);
        let mut cursor = FrameCursor::new(&frame).unwrap();
        assert_eq!(cursor.entries_remaining(), 3);
        let mut seen = Vec::new();
        while let Some(entry) = cursor.next_entry().unwrap() {
            let mut runs = Vec::new();
            while let Some(run) = cursor.next_run().unwrap() {
                runs.push(run);
            }
            seen.push((
                entry.key,
                RleSeries::from_parts(entry.start, entry.len, runs),
            ));
        }
        assert_eq!(seen, entries);
    }

    #[test]
    fn cursor_next_entry_skips_unread_runs() {
        let frame = encode_batch(&batch(), true);
        let mut cursor = FrameCursor::new(&frame).unwrap();
        let mut keys = Vec::new();
        while let Some(entry) = cursor.next_entry().unwrap() {
            keys.push(entry.key); // never read the runs
        }
        assert_eq!(keys, vec![(2, 0), (0, 3), (7, 1)]);
    }

    #[test]
    fn v1_frame_is_rejected_by_the_v2_cursor() {
        let frame = encode(&sample());
        assert!(matches!(
            FrameCursor::new(&frame),
            Err(DecodeError::UnsupportedVersion(1))
        ));
    }

    #[test]
    fn batch_truncation_detected_at_every_cut() {
        let frame = encode_batch(&batch(), true);
        for cut in 0..frame.len() {
            assert!(
                decode_batch(&frame[..cut]).is_err(),
                "cut={cut} silently decoded"
            );
        }
    }

    #[test]
    fn absurd_declared_lengths_capped_before_allocation() {
        // A minimal frame claiming u64::MAX entries (or runs) must fail
        // fast on the length cap, not attempt an allocation.
        let mut f = Vec::new();
        f.extend_from_slice(WIRE_MAGIC);
        f.push(WIRE_VERSION_V2);
        f.push(FLAG_INT_AMP);
        put_varint(&mut f, u64::MAX); // entry count
        assert_eq!(decode_batch(&f), Err(DecodeError::Truncated));

        let mut f = Vec::new();
        f.extend_from_slice(WIRE_MAGIC);
        f.push(WIRE_VERSION_V2);
        f.push(FLAG_INT_AMP);
        put_varint(&mut f, 1); // one entry
        put_varint(&mut f, 0); // src
        put_varint(&mut f, 1); // dst
        put_varint(&mut f, 0); // start
        put_varint(&mut f, u64::MAX); // len
        put_varint(&mut f, u64::MAX / 2); // num_runs: absurd
        assert_eq!(decode_batch(&f), Err(DecodeError::Truncated));
    }

    #[test]
    fn unknown_flag_bits_rejected() {
        let mut f = encode_batch(&batch(), true).to_vec();
        f[5] |= 0b1000_0000;
        assert_eq!(
            decode_batch(&f),
            Err(DecodeError::Corrupt("unknown flag bits"))
        );
    }

    fn leveled_batch() -> Vec<((u32, u32), u64, RleSeries)> {
        vec![
            ((2, 0), 0, sample()),
            (
                // A coarse image: span and runs in coarse ticks, amplitudes
                // √(block count) so the int-amp path still applies.
                (0, 3),
                16,
                RleSeries::from_parts(
                    Tick::new(6),
                    5,
                    vec![
                        Run::new(Tick::new(6), 2, 25f64.sqrt()),
                        Run::new(Tick::new(9), 1, 4f64.sqrt()),
                    ],
                ),
            ),
            ((7, 1), 32, RleSeries::empty(Tick::new(3), 4)),
        ]
    }

    #[test]
    fn leveled_batch_round_trip() {
        let entries = leveled_batch();
        for int_amp in [false, true] {
            let frame = encode_batch_leveled(&entries, int_amp);
            assert_eq!(
                decode_batch_leveled(&frame).unwrap(),
                entries,
                "int_amp={int_amp}"
            );
        }
    }

    #[test]
    fn unleveled_frames_decode_with_level_zero() {
        let entries = batch();
        let frame = encode_batch(&entries, true);
        for (i, (key, level, series)) in decode_batch_leveled(&frame).unwrap().iter().enumerate() {
            assert_eq!((*key, series.clone()), entries[i], "entry {i}");
            assert_eq!(*level, 0, "entry {i}");
        }
    }

    #[test]
    fn leveled_entries_rejected_by_unleveled_decode() {
        let frame = encode_batch_leveled(&leveled_batch(), true);
        assert_eq!(
            decode_batch(&frame),
            Err(DecodeError::Corrupt("leveled entry in unleveled decode"))
        );
        // An all-fine leveled frame materializes fine.
        let fine = vec![((2u32, 0u32), 0u64, sample())];
        let frame = encode_batch_leveled(&fine, true);
        assert_eq!(decode_batch(&frame).unwrap(), vec![((2, 0), sample())]);
    }

    #[test]
    fn leveled_batch_truncation_detected_at_every_cut() {
        let frame = encode_batch_leveled(&leveled_batch(), true);
        for cut in 0..frame.len() {
            assert!(
                decode_batch_leveled(&frame[..cut]).is_err(),
                "cut={cut} silently decoded"
            );
        }
    }

    #[test]
    fn absurd_decimation_level_rejected() {
        let mut f = Vec::new();
        f.extend_from_slice(WIRE_MAGIC);
        f.push(WIRE_VERSION_V2);
        f.push(FLAG_INT_AMP | FLAG_LEVELS);
        put_varint(&mut f, 1); // one entry
        put_varint(&mut f, 0); // src
        put_varint(&mut f, 1); // dst
        put_varint(&mut f, u64::from(u32::MAX) + 1); // level: absurd
        put_varint(&mut f, 0); // start
        put_varint(&mut f, 0); // len
        put_varint(&mut f, 0); // num_runs
        assert_eq!(
            decode_batch_leveled(&f),
            Err(DecodeError::Corrupt("decimation level exceeds u32"))
        );
    }

    #[test]
    fn leveled_flag_does_not_change_untagged_bytes() {
        // The reduction-off encoder must stay byte-identical: the level
        // tag only ever appears behind its own flag bit.
        let entries = batch();
        let frame = encode_batch(&entries, true);
        assert_eq!(frame[5] & FLAG_LEVELS, 0);
        let leveled: Vec<_> = entries.iter().map(|(k, s)| (*k, 0u64, s.clone())).collect();
        let tagged = encode_batch_leveled(&leveled, true);
        assert_eq!(tagged.len(), frame.len() + entries.len());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut f = encode_batch(&batch(), true).to_vec();
        f.push(0);
        assert_eq!(
            decode_batch(&f),
            Err(DecodeError::Corrupt("trailing bytes after last series"))
        );
    }

    #[test]
    fn display_messages_are_lowercase() {
        for e in [
            DecodeError::BadMagic,
            DecodeError::UnsupportedVersion(2),
            DecodeError::Truncated,
            DecodeError::Corrupt("x"),
        ] {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }
}
