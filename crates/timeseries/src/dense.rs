//! Contiguous ("no compression") series representation.

use crate::sparse::{SparseEntry, SparseSeries};
use crate::stats::SeriesStats;
use crate::time::Tick;
use serde::{Deserialize, Serialize};

/// A contiguous signal: one `f64` per tick starting at `start`.
///
/// This is the paper's uncompressed representation, the baseline against
/// which burst (sparse) and RLE compression are evaluated (Fig. 10). It is
/// also the natural input/output format of the FFT correlator.
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::{DenseSeries, Tick};
/// let s = DenseSeries::new(Tick::new(5), vec![0.0, 1.0, 2.0]);
/// assert_eq!(s.len(), 3);
/// assert_eq!(s.value_at(Tick::new(7)), 2.0);
/// assert_eq!(s.value_at(Tick::new(100)), 0.0); // outside span
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DenseSeries {
    start: Tick,
    values: Vec<f64>,
}

impl DenseSeries {
    /// Creates a series covering `[start, start + values.len())`.
    pub fn new(start: Tick, values: Vec<f64>) -> Self {
        DenseSeries { start, values }
    }

    /// Creates an all-zero series of `len` ticks.
    pub fn zeros(start: Tick, len: u64) -> Self {
        DenseSeries {
            start,
            values: vec![0.0; len as usize],
        }
    }

    /// First tick of the span.
    pub fn start(&self) -> Tick {
        self.start
    }

    /// One past the last tick of the span.
    pub fn end(&self) -> Tick {
        self.start + self.values.len() as u64
    }

    /// Number of ticks in the span.
    pub fn len(&self) -> u64 {
        self.values.len() as u64
    }

    /// Whether the span is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw values slice.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The value at tick `t`, zero outside the span.
    pub fn value_at(&self, t: Tick) -> f64 {
        match t.checked_sub(self.start) {
            Some(off) if (off as usize) < self.values.len() => self.values[off as usize],
            _ => 0.0,
        }
    }

    /// Sets the value at tick `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is outside the span.
    pub fn set(&mut self, t: Tick, v: f64) {
        let off = t
            .checked_sub(self.start)
            .filter(|&o| (o as usize) < self.values.len())
            .expect("tick outside dense series span");
        self.values[off as usize] = v;
    }

    /// Iterates over the non-zero entries as `(tick, value)` pairs.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (Tick, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0.0)
            .map(move |(i, &v)| (self.start + i as u64, v))
    }

    /// Moments over the full span (zeros included).
    pub fn stats(&self) -> SeriesStats {
        SeriesStats::from_entries(
            self.values.iter().copied().filter(|&v| v != 0.0),
            self.len(),
        )
    }

    /// Converts to the zero-suppressed sparse representation, preserving the
    /// logical span.
    pub fn to_sparse(&self) -> SparseSeries {
        SparseSeries::from_parts(
            self.start,
            self.len(),
            self.iter_nonzero()
                .map(|(t, v)| SparseEntry::new(t, v))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_at_outside_span_is_zero() {
        let s = DenseSeries::new(Tick::new(10), vec![1.0, 2.0]);
        assert_eq!(s.value_at(Tick::new(9)), 0.0);
        assert_eq!(s.value_at(Tick::new(12)), 0.0);
        assert_eq!(s.value_at(Tick::new(11)), 2.0);
    }

    #[test]
    fn zeros_has_correct_span() {
        let s = DenseSeries::zeros(Tick::new(3), 4);
        assert_eq!(s.start(), Tick::new(3));
        assert_eq!(s.end(), Tick::new(7));
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(s.iter_nonzero().next().is_none());
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut s = DenseSeries::zeros(Tick::new(0), 5);
        s.set(Tick::new(2), 7.5);
        assert_eq!(s.value_at(Tick::new(2)), 7.5);
    }

    #[test]
    #[should_panic(expected = "tick outside dense series span")]
    fn set_outside_span_panics() {
        let mut s = DenseSeries::zeros(Tick::new(0), 5);
        s.set(Tick::new(5), 1.0);
    }

    #[test]
    fn to_sparse_preserves_span_and_values() {
        let s = DenseSeries::new(Tick::new(2), vec![0.0, 3.0, 0.0, 4.0]);
        let sp = s.to_sparse();
        assert_eq!(sp.start(), Tick::new(2));
        assert_eq!(sp.len(), 4);
        assert_eq!(sp.num_entries(), 2);
        assert_eq!(sp.value_at(Tick::new(3)), 3.0);
        assert_eq!(sp.value_at(Tick::new(5)), 4.0);
    }

    #[test]
    fn stats_counts_zeros_in_window() {
        let s = DenseSeries::new(Tick::new(0), vec![2.0, 0.0, 0.0, 2.0]);
        assert_eq!(s.stats().mean(), 1.0);
        assert_eq!(s.stats().variance(), 1.0);
    }
}
