//! Run-length-encoded series representation.
//!
//! The paper observes (Section 3.5) that enterprise density series contain
//! many repeated values, so run-length encoding compresses them well, can
//! be computed online with negligible overhead, and — crucially — lets the
//! correlation of overlapping runs be computed in a single step. A series
//! becomes a sequence of 3-tuples `(t, c, n)`: the start tick of the run,
//! its length, and the density value.

use crate::sparse::{SparseEntry, SparseSeries};
use crate::stats::SeriesStats;
use crate::time::Tick;
use serde::{Deserialize, Serialize};

/// One run: `len` consecutive ticks starting at `start`, all with `value`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Run {
    start: Tick,
    len: u64,
    value: f64,
}

impl Run {
    /// Creates a run.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if `len` is zero or `value` is zero.
    pub fn new(start: Tick, len: u64, value: f64) -> Self {
        debug_assert!(len > 0, "zero-length run");
        debug_assert!(value != 0.0, "zero-valued run (gaps are implicit)");
        Run { start, len, value }
    }

    /// First tick of the run.
    pub fn start(&self) -> Tick {
        self.start
    }

    /// One past the last tick of the run.
    pub fn end(&self) -> Tick {
        self.start + self.len
    }

    /// Number of ticks in the run.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the run is empty (never true for a validly constructed run).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The repeated density value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Lengthens the run by `by` ticks.
    pub fn extend(&mut self, by: u64) {
        self.len += by;
    }
}

/// A run-length-encoded signal over the logical span `[start, start + len)`.
///
/// Runs are disjoint, ordered, non-adjacent-with-equal-value (maximal), and
/// all non-zero; ticks not covered by any run are implicitly zero.
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::{RleSeries, Run, Tick};
/// let r = RleSeries::from_parts(Tick::new(0), 100, vec![Run::new(Tick::new(5), 10, 2.0)]);
/// assert_eq!(r.value_at(Tick::new(9)), 2.0);
/// assert_eq!(r.value_at(Tick::new(15)), 0.0);
/// assert_eq!(r.num_runs(), 1);
/// assert_eq!(r.stats().sum(), 20.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RleSeries {
    start: Tick,
    len: u64,
    runs: Vec<Run>,
}

impl RleSeries {
    /// Creates an empty (all-zero) series over `[start, start + len)`.
    pub fn empty(start: Tick, len: u64) -> Self {
        RleSeries {
            start,
            len,
            runs: Vec::new(),
        }
    }

    /// Creates a series from parts.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if runs overlap, are out of order, or fall
    /// outside the span.
    pub fn from_parts(start: Tick, len: u64, runs: Vec<Run>) -> Self {
        #[cfg(debug_assertions)]
        {
            let mut prev_end: Option<Tick> = None;
            for r in &runs {
                debug_assert!(
                    r.start >= start && r.end().index() <= start.index() + len,
                    "run outside span"
                );
                if let Some(pe) = prev_end {
                    debug_assert!(r.start >= pe, "runs overlap or out of order");
                }
                prev_end = Some(r.end());
            }
        }
        RleSeries { start, len, runs }
    }

    /// First tick of the logical span.
    pub fn start(&self) -> Tick {
        self.start
    }

    /// One past the last tick of the logical span.
    pub fn end(&self) -> Tick {
        self.start + self.len
    }

    /// Logical span length in ticks.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the logical span is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of stored runs.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Number of ticks covered by runs (the decoded non-zero support).
    pub fn support(&self) -> u64 {
        self.runs.iter().map(|r| r.len).sum()
    }

    /// Fraction of the logical span covered by non-zero runs, in `[0, 1]`
    /// (zero for an empty span). O(runs), no decode pass — this is one of
    /// the cost-model features the adaptive correlation backend reads per
    /// pair, so it must stay cheap relative to a correlation.
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.support() as f64 / self.len as f64
        }
    }

    /// Mean run length in ticks (zero when there are no runs). O(runs).
    /// Together with [`density`](Self::density) and
    /// [`num_runs`](Self::num_runs) this summarizes the series shape well
    /// enough to predict per-engine correlation cost without decoding.
    pub fn avg_run_len(&self) -> f64 {
        if self.runs.is_empty() {
            0.0
        } else {
            self.support() as f64 / self.runs.len() as f64
        }
    }

    /// The stored runs, ordered by start tick.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Consumes the series, returning its run storage — lets callers that
    /// materialize transient chunks recycle one allocation.
    pub fn into_runs(self) -> Vec<Run> {
        self.runs
    }

    /// The value at tick `t` (zero if uncovered or outside the span).
    pub fn value_at(&self, t: Tick) -> f64 {
        let i = self.runs.partition_point(|r| r.end() <= t);
        match self.runs.get(i) {
            Some(r) if r.start <= t => r.value,
            _ => 0.0,
        }
    }

    /// Moments over the logical span (zeros included).
    pub fn stats(&self) -> SeriesStats {
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for r in &self.runs {
            sum += r.value * r.len as f64;
            sum_sq += r.value * r.value * r.len as f64;
        }
        SeriesStats::from_moments(self.len, sum, sum_sq)
    }

    /// Decodes directly to the dense representation over the same span,
    /// without materializing the per-tick sparse entries in between.
    ///
    /// Equivalent to `to_sparse().to_dense()` (bit-for-bit) but O(span)
    /// with no intermediate allocation proportional to the support.
    pub fn to_dense(&self) -> crate::dense::DenseSeries {
        let mut values = Vec::new();
        self.decode_dense_into(&mut values);
        crate::dense::DenseSeries::new(self.start, values)
    }

    /// Decodes the per-tick values over the logical span into `out`,
    /// clearing it first. Equivalent to `to_dense().values().to_vec()` but
    /// reuses the caller's allocation — the correlation scratch arena calls
    /// this every pair, so the steady state must not allocate once `out`
    /// has grown to the window size.
    pub fn decode_dense_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.len as usize, 0.0);
        for r in &self.runs {
            let off = (r.start.index() - self.start.index()) as usize;
            out[off..off + r.len as usize].fill(r.value);
        }
    }

    /// Decodes the non-zero entries into `out`, clearing it first.
    /// Equivalent to `to_sparse().entries().to_vec()` with the caller's
    /// allocation reused (see [`decode_dense_into`](Self::decode_dense_into)).
    pub fn decode_sparse_into(&self, out: &mut Vec<SparseEntry>) {
        out.clear();
        out.reserve(self.support() as usize);
        for r in &self.runs {
            for i in 0..r.len {
                out.push(SparseEntry::new(r.start + i, r.value));
            }
        }
    }

    /// Decimates by `k`: coarse tick `j` sums the fine values over ticks
    /// `[j·k, (j+1)·k)`. Coarse ticks are aligned to *absolute* fine-tick
    /// multiples of `k` (not to the span start), so decimations of
    /// contiguous chunks tile into the decimation of their concatenation.
    /// The coarse span is `[⌊start/k⌋, ⌈end/k⌉)`.
    ///
    /// For non-negative signals this is the coarse tier of the screening
    /// pyramid: every fine product `x(t)·y(t+d)` lands in exactly one
    /// coarse product `X(⌊t/k⌋)·Y(⌊(t+d)/k⌋)`, which is what makes the
    /// decimated correlation a sound upper-bound cover of the fine one.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    ///
    /// # Example
    ///
    /// ```
    /// use e2eprof_timeseries::{RleSeries, Run, Tick};
    /// let r = RleSeries::from_parts(Tick::new(0), 8, vec![Run::new(Tick::new(1), 5, 2.0)]);
    /// let c = r.decimate(4);
    /// assert_eq!(c.len(), 2);
    /// assert_eq!(c.value_at(Tick::new(0)), 6.0); // ticks 1,2,3
    /// assert_eq!(c.value_at(Tick::new(1)), 4.0); // ticks 4,5
    /// ```
    pub fn decimate(&self, k: u64) -> RleSeries {
        assert!(k > 0, "decimation factor must be positive");
        let cstart = self.start.index() / k;
        let cend = if self.len == 0 {
            cstart
        } else {
            self.end().index().div_ceil(k)
        };
        let mut runs: Vec<Run> = Vec::new();
        // The coarse tick currently being accumulated (possibly fed by
        // several fine runs) and its partial sum.
        let mut pending: Option<(u64, f64)> = None;
        fn flush(runs: &mut Vec<Run>, j: u64, v: f64) {
            if v == 0.0 {
                return;
            }
            match runs.last_mut() {
                Some(r) if r.end().index() == j && r.value.to_bits() == v.to_bits() => r.extend(1),
                _ => runs.push(Run::new(Tick::new(j), 1, v)),
            }
        }
        for r in &self.runs {
            let mut t = r.start.index();
            let e = r.end().index();
            // Leading partial block of this run.
            let j = t / k;
            let head_end = ((j + 1) * k).min(e);
            let contrib = r.value * (head_end - t) as f64;
            match &mut pending {
                Some((pj, sum)) if *pj == j => *sum += contrib,
                Some((pj, sum)) => {
                    let (pj, sum) = (*pj, *sum);
                    flush(&mut runs, pj, sum);
                    pending = Some((j, contrib));
                }
                None => pending = Some((j, contrib)),
            }
            t = head_end;
            // Blocks fully covered by this run: a constant coarse run.
            let full_blocks = (e - t) / k;
            if full_blocks > 0 {
                if let Some((pj, sum)) = pending.take() {
                    flush(&mut runs, pj, sum);
                }
                let v = r.value * k as f64;
                if v != 0.0 {
                    match runs.last_mut() {
                        Some(last)
                            if last.end().index() == t / k
                                && last.value.to_bits() == v.to_bits() =>
                        {
                            last.extend(full_blocks)
                        }
                        _ => runs.push(Run::new(Tick::new(t / k), full_blocks, v)),
                    }
                }
                t += full_blocks * k;
            }
            // Trailing partial block.
            if t < e {
                let contrib = r.value * (e - t) as f64;
                match &mut pending {
                    Some((pj, sum)) if *pj == t / k => *sum += contrib,
                    _ => {
                        if let Some((pj, sum)) = pending.take() {
                            flush(&mut runs, pj, sum);
                        }
                        pending = Some((t / k, contrib));
                    }
                }
            }
        }
        if let Some((pj, sum)) = pending {
            flush(&mut runs, pj, sum);
        }
        RleSeries {
            start: Tick::new(cstart),
            len: cend - cstart,
            runs,
        }
    }

    /// Decodes back to the sparse representation over the same span.
    pub fn to_sparse(&self) -> SparseSeries {
        let mut entries = Vec::new();
        self.decode_sparse_into(&mut entries);
        SparseSeries::from_parts(self.start, self.len, entries)
    }

    /// Returns the sub-series covering `[from, to)`, splitting runs that
    /// straddle the boundary.
    pub fn slice(&self, from: Tick, to: Tick) -> RleSeries {
        let len = to.checked_sub(from).unwrap_or(0);
        let mut runs = Vec::new();
        for r in &self.runs {
            if r.end() <= from {
                continue;
            }
            if r.start >= to {
                break;
            }
            let s = r.start.max(from);
            let e = r.end().min(to);
            runs.push(Run::new(s, e - s, r.value));
        }
        RleSeries {
            start: from,
            len,
            runs,
        }
    }

    /// Concatenates a later chunk, merging a run that continues across the
    /// boundary.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` does not begin exactly at `self.end()`.
    pub fn append_chunk(&mut self, chunk: &RleSeries) {
        assert_eq!(
            chunk.start,
            self.end(),
            "appended chunk must be contiguous with the series"
        );
        let mut it = chunk.runs.iter();
        if let (Some(last), Some(first)) = (self.runs.last_mut(), chunk.runs.first()) {
            if last.end() == first.start && last.value.to_bits() == first.value.to_bits() {
                last.extend(first.len);
                it.next();
            }
        }
        self.runs.extend(it.copied());
        self.len += chunk.len;
    }

    /// The compression factor `r` relative to the sparse representation:
    /// non-zero support divided by run count (1.0 for an all-singleton
    /// encoding; larger is better).
    pub fn compression_factor(&self) -> f64 {
        if self.runs.is_empty() {
            1.0
        } else {
            self.support() as f64 / self.runs.len() as f64
        }
    }
}

/// Online run-length encoder.
///
/// Accepts strictly increasing `(tick, value)` samples (zeros must be
/// skipped by the caller, as the density estimator does) and produces
/// maximal runs. This mirrors the paper's tracer, which RLE-encodes on the
/// service node before streaming.
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::{rle::RleEncoder, Tick};
/// let mut enc = RleEncoder::new(Tick::new(0));
/// for t in 3..8 {
///     enc.push(Tick::new(t), 1.0);
/// }
/// enc.push(Tick::new(9), 2.0);
/// let series = enc.finish(Tick::new(20));
/// assert_eq!(series.num_runs(), 2);
/// assert_eq!(series.len(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct RleEncoder {
    start: Tick,
    runs: Vec<Run>,
    last_tick: Option<Tick>,
}

impl RleEncoder {
    /// Creates an encoder whose output span begins at `start`.
    pub fn new(start: Tick) -> Self {
        RleEncoder {
            start,
            runs: Vec::new(),
            last_tick: None,
        }
    }

    /// Pushes a non-zero sample.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is not strictly greater than the previous sample's
    /// tick, is before the span start, or if `value` is zero.
    pub fn push(&mut self, tick: Tick, value: f64) {
        assert!(value != 0.0, "zero values must be skipped, not pushed");
        assert!(tick >= self.start, "sample before span start");
        if let Some(last) = self.last_tick {
            assert!(tick > last, "samples must be strictly increasing");
        }
        self.last_tick = Some(tick);
        match self.runs.last_mut() {
            Some(r) if r.end() == tick && r.value().to_bits() == value.to_bits() => r.extend(1),
            _ => self.runs.push(Run::new(tick, 1, value)),
        }
    }

    /// Finalizes the encoding with the logical span ending at `end`
    /// (exclusive).
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes the last pushed sample.
    pub fn finish(self, end: Tick) -> RleSeries {
        if let Some(last_run) = self.runs.last() {
            assert!(end >= last_run.end(), "end precedes encoded data");
        }
        let len = end.checked_sub(self.start).unwrap_or(0);
        RleSeries::from_parts(self.start, len, self.runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RleSeries {
        RleSeries::from_parts(
            Tick::new(0),
            50,
            vec![
                Run::new(Tick::new(5), 3, 1.0),
                Run::new(Tick::new(10), 2, 2.0),
                Run::new(Tick::new(40), 1, 1.0),
            ],
        )
    }

    #[test]
    fn value_lookup_inside_and_outside_runs() {
        let r = sample();
        assert_eq!(r.value_at(Tick::new(5)), 1.0);
        assert_eq!(r.value_at(Tick::new(7)), 1.0);
        assert_eq!(r.value_at(Tick::new(8)), 0.0);
        assert_eq!(r.value_at(Tick::new(11)), 2.0);
        assert_eq!(r.value_at(Tick::new(49)), 0.0);
    }

    #[test]
    fn support_and_compression() {
        let r = sample();
        assert_eq!(r.support(), 6);
        assert!((r.compression_factor() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn density_and_avg_run_len() {
        let r = sample();
        assert!((r.density() - 6.0 / 50.0).abs() < 1e-12);
        assert!((r.avg_run_len() - 2.0).abs() < 1e-12);
        let e = RleSeries::empty(Tick::new(0), 0);
        assert_eq!(e.density(), 0.0);
        assert_eq!(e.avg_run_len(), 0.0);
        let q = RleSeries::empty(Tick::new(0), 10);
        assert_eq!(q.density(), 0.0);
        assert_eq!(q.avg_run_len(), 0.0);
    }

    #[test]
    fn decode_into_matches_owned_decodes() {
        let r = sample();
        let mut dense = vec![99.0; 3]; // stale contents must be cleared
        r.decode_dense_into(&mut dense);
        assert_eq!(dense, r.to_dense().values());
        let mut entries = Vec::new();
        r.decode_sparse_into(&mut entries);
        assert_eq!(entries, r.to_sparse().entries());
        // Reuse without reallocation once grown.
        let cap = dense.capacity();
        r.decode_dense_into(&mut dense);
        assert_eq!(dense.capacity(), cap);
    }

    #[test]
    fn sparse_round_trip() {
        let r = sample();
        assert_eq!(r.to_sparse().to_rle(), r);
    }

    #[test]
    fn stats_match_sparse() {
        let r = sample();
        let s = r.to_sparse();
        assert!((r.stats().mean() - s.stats().mean()).abs() < 1e-12);
        assert!((r.stats().variance() - s.stats().variance()).abs() < 1e-12);
    }

    #[test]
    fn slice_splits_straddling_runs() {
        let r = sample();
        let sub = r.slice(Tick::new(6), Tick::new(11));
        assert_eq!(sub.start(), Tick::new(6));
        assert_eq!(sub.len(), 5);
        assert_eq!(sub.num_runs(), 2);
        assert_eq!(sub.value_at(Tick::new(6)), 1.0);
        assert_eq!(sub.value_at(Tick::new(10)), 2.0);
        assert_eq!(sub.value_at(Tick::new(5)), 0.0); // outside slice
    }

    #[test]
    fn append_merges_continuing_run() {
        let mut a = RleSeries::from_parts(Tick::new(0), 10, vec![Run::new(Tick::new(8), 2, 1.0)]);
        let b = RleSeries::from_parts(Tick::new(10), 10, vec![Run::new(Tick::new(10), 3, 1.0)]);
        a.append_chunk(&b);
        assert_eq!(a.num_runs(), 1);
        assert_eq!(a.runs()[0].len(), 5);
        assert_eq!(a.len(), 20);
    }

    #[test]
    fn append_does_not_merge_different_values() {
        let mut a = RleSeries::from_parts(Tick::new(0), 10, vec![Run::new(Tick::new(8), 2, 1.0)]);
        let b = RleSeries::from_parts(Tick::new(10), 10, vec![Run::new(Tick::new(10), 3, 2.0)]);
        a.append_chunk(&b);
        assert_eq!(a.num_runs(), 2);
    }

    /// Brute-force decimation reference: sum every fine tick into its
    /// absolute block.
    fn decimate_reference(r: &RleSeries, k: u64) -> Vec<(u64, f64)> {
        let cs = r.start().index() / k;
        let ce = r.end().index().div_ceil(k);
        (cs..ce)
            .map(|j| {
                let sum = (j * k..(j + 1) * k)
                    .map(|t| r.value_at(Tick::new(t)))
                    .sum::<f64>();
                (j, sum)
            })
            .collect()
    }

    fn assert_decimation_matches(r: &RleSeries, k: u64) {
        let c = r.decimate(k);
        assert_eq!(c.start().index(), r.start().index() / k, "k={k}");
        assert_eq!(c.end().index(), r.end().index().div_ceil(k), "k={k}");
        for (j, want) in decimate_reference(r, k) {
            let got = c.value_at(Tick::new(j));
            assert!(
                (got - want).abs() < 1e-9,
                "k={k} coarse tick {j}: got {got} want {want}"
            );
        }
        // Runs stay maximal: adjacent runs never touch with equal bits.
        for w in c.runs().windows(2) {
            assert!(
                w[0].end() < w[1].start() || w[0].value().to_bits() != w[1].value().to_bits(),
                "non-maximal coarse runs for k={k}"
            );
        }
    }

    #[test]
    fn decimate_matches_brute_force() {
        let series = [
            sample(),
            RleSeries::empty(Tick::new(7), 23),
            RleSeries::from_parts(Tick::new(3), 40, vec![Run::new(Tick::new(3), 40, 1.5)]),
            RleSeries::from_parts(
                Tick::new(13),
                64,
                vec![
                    Run::new(Tick::new(14), 3, 1.0),
                    Run::new(Tick::new(17), 9, 2.0),
                    Run::new(Tick::new(40), 30, 1.0),
                ],
            ),
        ];
        for r in &series {
            for k in [1, 2, 3, 4, 8, 16, 64] {
                assert_decimation_matches(r, k);
            }
        }
    }

    #[test]
    fn decimations_of_contiguous_chunks_tile() {
        // Block-aligned split point: decimate(chunks) tiles decimate(whole).
        let whole = RleSeries::from_parts(Tick::new(0), 32, vec![Run::new(Tick::new(2), 27, 1.0)]);
        let k = 4;
        let a = whole.slice(Tick::new(0), Tick::new(16)).decimate(k);
        let b = whole.slice(Tick::new(16), Tick::new(32)).decimate(k);
        let mut tiled = a.clone();
        tiled.append_chunk(&b);
        assert_eq!(tiled, whole.decimate(k));
    }

    #[test]
    fn to_dense_matches_sparse_round_trip() {
        let r = sample();
        assert_eq!(r.to_dense(), r.to_sparse().to_dense());
        let e = RleSeries::empty(Tick::new(4), 6);
        assert_eq!(e.to_dense(), e.to_sparse().to_dense());
    }

    #[test]
    fn encoder_builds_maximal_runs() {
        let mut enc = RleEncoder::new(Tick::new(0));
        enc.push(Tick::new(1), 1.0);
        enc.push(Tick::new(2), 1.0);
        enc.push(Tick::new(3), 2.0);
        enc.push(Tick::new(7), 2.0); // gap: separate run despite equal value
        let r = enc.finish(Tick::new(10));
        assert_eq!(r.num_runs(), 3);
        assert_eq!(r.len(), 10);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn encoder_rejects_non_monotone_input() {
        let mut enc = RleEncoder::new(Tick::new(0));
        enc.push(Tick::new(5), 1.0);
        enc.push(Tick::new(5), 1.0);
    }

    #[test]
    #[should_panic(expected = "zero values")]
    fn encoder_rejects_zero_values() {
        let mut enc = RleEncoder::new(Tick::new(0));
        enc.push(Tick::new(5), 0.0);
    }
}
