//! Sliding-window storage for streamed series (Algorithm 1's buffers).
//!
//! The analyzer maintains, per edge signal, the most recent stretch of the
//! density series. Chunks of `ΔW` ticks arrive from tracer agents; the
//! window retains at most `capacity` ticks and evicts the oldest data.
//!
//! The capacity is typically `W + T_u` rather than just `W`: the correlated
//! *target* signal must stay available `T_u` ticks past the source window so
//! that bounded-lag correlation never reads unmaterialized (future) data.

use crate::rle::RleSeries;
use crate::time::Tick;

/// A bounded window over a run-length-encoded signal.
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::{window::SlidingWindow, RleSeries, Run, Tick};
/// let mut w = SlidingWindow::new(10);
/// w.append_chunk(&RleSeries::from_parts(Tick::new(0), 8, vec![Run::new(Tick::new(2), 1, 1.0)]));
/// w.append_chunk(&RleSeries::from_parts(Tick::new(8), 8, vec![Run::new(Tick::new(9), 2, 2.0)]));
/// // 16 ticks seen, capacity 10: window now spans [6, 16).
/// assert_eq!(w.start(), Tick::new(6));
/// assert_eq!(w.end(), Tick::new(16));
/// assert_eq!(w.series().value_at(Tick::new(2)), 0.0); // evicted
/// assert_eq!(w.series().value_at(Tick::new(10)), 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    capacity: u64,
    series: Option<RleSeries>,
}

impl SlidingWindow {
    /// Creates an empty window retaining at most `capacity` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindow {
            capacity,
            series: None,
        }
    }

    /// The retention capacity in ticks.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Whether any data has been appended.
    pub fn is_empty(&self) -> bool {
        self.series.is_none()
    }

    /// First retained tick (the window start). Tick zero before any data.
    pub fn start(&self) -> Tick {
        self.series
            .as_ref()
            .map(|s| s.start())
            .unwrap_or(Tick::ZERO)
    }

    /// One past the last retained tick. Tick zero before any data.
    pub fn end(&self) -> Tick {
        self.series.as_ref().map(|s| s.end()).unwrap_or(Tick::ZERO)
    }

    /// Appends the next contiguous chunk, evicting old data past capacity.
    ///
    /// The first chunk establishes the window's origin; later chunks must
    /// start exactly at [`end`](SlidingWindow::end).
    ///
    /// # Panics
    ///
    /// Panics if a non-first chunk is not contiguous.
    pub fn append_chunk(&mut self, chunk: &RleSeries) {
        match &mut self.series {
            None => self.series = Some(chunk.clone()),
            Some(s) => s.append_chunk(chunk),
        }
        let s = self.series.as_mut().expect("just set");
        if s.len() > self.capacity {
            let new_start = Tick::new(s.end().index() - self.capacity);
            *s = s.slice(new_start, s.end());
        }
    }

    /// The retained series (empty series at tick zero before any data).
    pub fn series(&self) -> RleSeries {
        self.series
            .clone()
            .unwrap_or_else(|| RleSeries::empty(Tick::ZERO, 0))
    }

    /// A view of `[from, to)` clamped to the retained span.
    pub fn view(&self, from: Tick, to: Tick) -> RleSeries {
        match &self.series {
            None => RleSeries::empty(from, to.checked_sub(from).unwrap_or(0)),
            Some(s) => {
                let from = from.max(s.start());
                let to = to.min(s.end()).max(from);
                s.slice(from, to)
            }
        }
    }

    /// Appends a chunk, recovering from stream discontinuities:
    ///
    /// * a chunk starting *past* the retained end (frames were lost in
    ///   transit) resets the window to the chunk — returns `true`;
    /// * a chunk *overlapping* retained data (a restarted tracer replaying
    ///   history from its origin) has its stale prefix dropped and only
    ///   the novel suffix appended — returns `false`;
    /// * a chunk entirely within retained data is ignored — returns
    ///   `false`.
    pub fn append_or_reset(&mut self, chunk: &RleSeries) -> bool {
        let Some(s) = &self.series else {
            self.append_chunk(chunk);
            return false;
        };
        let end = s.end();
        if chunk.start() > end {
            self.series = Some(chunk.clone());
            true
        } else if chunk.end() <= end {
            false // stale duplicate
        } else if chunk.start() < end {
            let suffix = chunk.slice(end, chunk.end());
            self.append_chunk(&suffix);
            false
        } else {
            self.append_chunk(chunk);
            false
        }
    }

    /// The most recent `ticks`-long view (shorter if less data is retained).
    pub fn latest(&self, ticks: u64) -> RleSeries {
        let end = self.end();
        let from = end.saturating_sub(ticks).max(self.start());
        self.view(from, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rle::Run;

    fn chunk(start: u64, len: u64, runs: Vec<Run>) -> RleSeries {
        RleSeries::from_parts(Tick::new(start), len, runs)
    }

    #[test]
    fn first_chunk_establishes_origin() {
        let mut w = SlidingWindow::new(100);
        assert!(w.is_empty());
        w.append_chunk(&chunk(40, 10, vec![Run::new(Tick::new(45), 1, 1.0)]));
        assert_eq!(w.start(), Tick::new(40));
        assert_eq!(w.end(), Tick::new(50));
        assert!(!w.is_empty());
    }

    #[test]
    fn eviction_keeps_capacity() {
        let mut w = SlidingWindow::new(5);
        w.append_chunk(&chunk(0, 4, vec![Run::new(Tick::new(0), 4, 1.0)]));
        w.append_chunk(&chunk(4, 4, vec![Run::new(Tick::new(4), 4, 2.0)]));
        assert_eq!(w.start(), Tick::new(3));
        assert_eq!(w.end(), Tick::new(8));
        assert_eq!(w.series().value_at(Tick::new(2)), 0.0);
        assert_eq!(w.series().value_at(Tick::new(3)), 1.0);
        assert_eq!(w.series().value_at(Tick::new(7)), 2.0);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn noncontiguous_chunk_panics() {
        let mut w = SlidingWindow::new(100);
        w.append_chunk(&chunk(0, 10, vec![]));
        w.append_chunk(&chunk(11, 10, vec![]));
    }

    #[test]
    fn view_clamps_to_span() {
        let mut w = SlidingWindow::new(100);
        w.append_chunk(&chunk(10, 10, vec![Run::new(Tick::new(12), 2, 3.0)]));
        let v = w.view(Tick::new(0), Tick::new(15));
        assert_eq!(v.start(), Tick::new(10));
        assert_eq!(v.end(), Tick::new(15));
        assert_eq!(v.value_at(Tick::new(12)), 3.0);
    }

    #[test]
    fn latest_returns_tail() {
        let mut w = SlidingWindow::new(100);
        w.append_chunk(&chunk(0, 20, vec![Run::new(Tick::new(19), 1, 5.0)]));
        let v = w.latest(4);
        assert_eq!(v.start(), Tick::new(16));
        assert_eq!(v.len(), 4);
        assert_eq!(v.value_at(Tick::new(19)), 5.0);
    }

    #[test]
    fn gap_resets_window() {
        let mut w = SlidingWindow::new(100);
        w.append_chunk(&chunk(0, 10, vec![Run::new(Tick::new(2), 1, 1.0)]));
        // Tracer restarted: next chunk starts at 50 instead of 10.
        let healed = w.append_or_reset(&chunk(50, 10, vec![Run::new(Tick::new(55), 1, 2.0)]));
        assert!(healed);
        assert_eq!(w.start(), Tick::new(50));
        assert_eq!(w.series().value_at(Tick::new(2)), 0.0);
        assert_eq!(w.series().value_at(Tick::new(55)), 2.0);
        // Contiguous appends keep working and report no healing.
        assert!(!w.append_or_reset(&chunk(60, 5, vec![])));
        assert_eq!(w.end(), Tick::new(65));
    }

    #[test]
    fn overlapping_replay_appends_only_the_novel_suffix() {
        let mut w = SlidingWindow::new(100);
        w.append_chunk(&chunk(0, 10, vec![Run::new(Tick::new(3), 1, 1.0)]));
        // Restarted tracer replays from 0 up to tick 15.
        let healed = w.append_or_reset(&chunk(
            0,
            15,
            vec![
                Run::new(Tick::new(3), 1, 1.0),
                Run::new(Tick::new(12), 1, 2.0),
            ],
        ));
        assert!(!healed);
        assert_eq!(w.end(), Tick::new(15));
        assert_eq!(w.series().value_at(Tick::new(3)), 1.0);
        assert_eq!(w.series().value_at(Tick::new(12)), 2.0);
        // A fully-stale chunk is ignored.
        assert!(!w.append_or_reset(&chunk(0, 10, vec![])));
        assert_eq!(w.end(), Tick::new(15));
    }

    #[test]
    fn empty_window_views_are_empty() {
        let w = SlidingWindow::new(10);
        assert_eq!(w.series().len(), 0);
        assert_eq!(w.view(Tick::new(5), Tick::new(9)).len(), 4);
        assert_eq!(w.latest(3).len(), 0);
    }
}
