//! Sliding-window storage for streamed series (Algorithm 1's buffers).
//!
//! The analyzer maintains, per edge signal, the most recent stretch of the
//! density series. Chunks of `ΔW` ticks arrive from tracer agents; the
//! window retains at most `capacity` ticks and evicts the oldest data.
//!
//! The capacity is typically `W + T_u` rather than just `W`: the correlated
//! *target* signal must stay available `T_u` ticks past the source window so
//! that bounded-lag correlation never reads unmaterialized (future) data.
//!
//! Storage is a run deque with amortized front eviction: appending a chunk
//! pushes its runs at the back (O(runs appended)) and eviction pops whole
//! stale runs off the front plus clips at most one straddler (O(runs
//! evicted)), so steady-state ingest never rebuilds the retained series.
//! The invariant: after every append, the deque holds exactly the runs of
//! `[end − min(len, capacity), end)`, each run clipped to that span —
//! identical to slicing a full-history series, just without ever storing
//! the history. [`series`](SlidingWindow::series) and
//! [`view`](SlidingWindow::view) materialize on demand.

use crate::rle::{RleSeries, Run};
use crate::time::Tick;
use std::collections::VecDeque;

/// A bounded window over a run-length-encoded signal.
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::{window::SlidingWindow, RleSeries, Run, Tick};
/// let mut w = SlidingWindow::new(10);
/// w.append_chunk(&RleSeries::from_parts(Tick::new(0), 8, vec![Run::new(Tick::new(2), 1, 1.0)]));
/// w.append_chunk(&RleSeries::from_parts(Tick::new(8), 8, vec![Run::new(Tick::new(9), 2, 2.0)]));
/// // 16 ticks seen, capacity 10: window now spans [6, 16).
/// assert_eq!(w.start(), Tick::new(6));
/// assert_eq!(w.end(), Tick::new(16));
/// assert_eq!(w.series().value_at(Tick::new(2)), 0.0); // evicted
/// assert_eq!(w.series().value_at(Tick::new(10)), 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    capacity: u64,
    /// Retained span `[start, end)`; `None` before any data.
    span: Option<(Tick, Tick)>,
    runs: VecDeque<Run>,
    /// Change epoch: bumped exactly when nonzero content enters or leaves
    /// the retained span (a run appended, merged, popped, or clipped, or
    /// the window reset across a gap). Appending or evicting all-zero
    /// spans does *not* bump it — run boundaries are the only events that
    /// can change any window sum, energy, or lagged product, so an
    /// unchanged epoch certifies the retained nonzero runs are bitwise
    /// identical (at identical absolute ticks) to when the epoch was read.
    epoch: u64,
}

impl SlidingWindow {
    /// Creates an empty window retaining at most `capacity` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindow {
            capacity,
            span: None,
            runs: VecDeque::new(),
            epoch: 0,
        }
    }

    /// The retention capacity in ticks.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The change epoch: a monotone counter that advances exactly when a
    /// run boundary enters or leaves the retained span (see the field
    /// docs). Two equal readings bracket a period in which no nonzero
    /// content was appended, evicted, or reset — every retained run is
    /// bitwise unchanged at the same absolute ticks.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether any retained (nonzero) run intersects `[from, to)`.
    ///
    /// `O(log runs)`. Only *retained* runs are visible: combine with an
    /// unchanged [`epoch`](Self::epoch) to certify a span was run-free
    /// over a whole period (eviction of a nonzero run bumps the epoch, so
    /// an unchanged epoch means nothing escaped this query's view).
    pub fn has_runs_in(&self, from: Tick, to: Tick) -> bool {
        if to <= from {
            return false;
        }
        let i = self.runs.partition_point(|r| r.end() <= from);
        self.runs.get(i).map(|r| r.start() < to).unwrap_or(false)
    }

    /// Whether any data has been appended.
    pub fn is_empty(&self) -> bool {
        self.span.is_none()
    }

    /// First retained tick (the window start). Tick zero before any data.
    pub fn start(&self) -> Tick {
        self.span.map(|(s, _)| s).unwrap_or(Tick::ZERO)
    }

    /// One past the last retained tick. Tick zero before any data.
    pub fn end(&self) -> Tick {
        self.span.map(|(_, e)| e).unwrap_or(Tick::ZERO)
    }

    /// Appends the next contiguous chunk, evicting old data past capacity.
    ///
    /// The first chunk establishes the window's origin; later chunks must
    /// start exactly at [`end`](SlidingWindow::end).
    ///
    /// # Panics
    ///
    /// Panics if a non-first chunk is not contiguous.
    pub fn append_chunk(&mut self, chunk: &RleSeries) {
        match self.span {
            None => {
                self.span = Some((chunk.start(), chunk.end()));
                self.runs.extend(chunk.runs().iter().copied());
                if !self.runs.is_empty() {
                    self.epoch += 1;
                }
            }
            Some((_, end)) => {
                assert_eq!(
                    chunk.start(),
                    end,
                    "appended chunk must be contiguous with the series"
                );
                self.push_runs(chunk.end(), chunk.runs().iter().copied());
            }
        }
        self.evict();
    }

    /// Appends one contiguous chunk's runs, merging the first with the
    /// back run when it continues it, and advancing the span to `new_end`.
    fn push_runs(&mut self, new_end: Tick, runs: impl Iterator<Item = Run>) {
        let mut first = true;
        let mut any = false;
        for r in runs {
            any = true;
            if std::mem::take(&mut first) {
                if let Some(last) = self.runs.back_mut() {
                    if last.end() == r.start() && last.value().to_bits() == r.value().to_bits() {
                        last.extend(r.len());
                        continue;
                    }
                }
            }
            self.runs.push_back(r);
        }
        if any {
            self.epoch += 1;
        }
        let span = self.span.as_mut().expect("push_runs on empty window");
        span.1 = new_end;
    }

    /// Drops runs that fell behind `end − capacity`: whole stale runs pop
    /// off the front, one straddler is clipped in place. Amortized O(1)
    /// per appended run — each run is popped at most once.
    fn evict(&mut self) {
        let Some((start, end)) = self.span else {
            return;
        };
        if end - start <= self.capacity {
            return;
        }
        let new_start = Tick::new(end.index() - self.capacity);
        let mut changed = false;
        while let Some(front) = self.runs.front() {
            if front.end() <= new_start {
                self.runs.pop_front();
                changed = true;
            } else {
                break;
            }
        }
        if let Some(front) = self.runs.front_mut() {
            if front.start() < new_start {
                *front = Run::new(new_start, front.end() - new_start, front.value());
                changed = true;
            }
        }
        if changed {
            self.epoch += 1;
        }
        self.span = Some((new_start, end));
    }

    /// The retained series (empty series at tick zero before any data).
    pub fn series(&self) -> RleSeries {
        match self.span {
            None => RleSeries::empty(Tick::ZERO, 0),
            Some((start, end)) => {
                RleSeries::from_parts(start, end - start, self.runs.iter().copied().collect())
            }
        }
    }

    /// A view of `[from, to)` clamped to the retained span.
    pub fn view(&self, from: Tick, to: Tick) -> RleSeries {
        let Some((start, end)) = self.span else {
            return RleSeries::empty(from, to.checked_sub(from).unwrap_or(0));
        };
        let from = from.max(start);
        let to = to.min(end).max(from);
        let mut runs = Vec::new();
        // First run ending past `from` (runs are ordered by start *and*
        // end, so the eligible suffix is contiguous).
        let mut i = self.runs.partition_point(|r| r.end() <= from);
        while let Some(r) = self.runs.get(i) {
            if r.start() >= to {
                break;
            }
            let s = r.start().max(from);
            let e = r.end().min(to);
            runs.push(Run::new(s, e - s, r.value()));
            i += 1;
        }
        RleSeries::from_parts(from, to - from, runs)
    }

    /// Appends a chunk, recovering from stream discontinuities:
    ///
    /// * a chunk starting *past* the retained end (frames were lost in
    ///   transit) resets the window to the chunk — returns `true`;
    /// * a chunk *overlapping* retained data (a restarted tracer replaying
    ///   history from its origin) has its stale prefix dropped and only
    ///   the novel suffix appended — returns `false`;
    /// * a chunk entirely within retained data is ignored — returns
    ///   `false`.
    pub fn append_or_reset(&mut self, chunk: &RleSeries) -> bool {
        self.extend_runs(chunk.start(), chunk.len(), chunk.runs().iter().copied())
    }

    /// [`append_or_reset`](Self::append_or_reset) as a streaming sink: the
    /// chunk is described by its span (`start`, `len`) and an iterator of
    /// its runs, consumed directly into the deque with no intermediate
    /// [`RleSeries`] — the analyzer feeds a wire
    /// [`FrameCursor`](crate::wire::FrameCursor) in here, making
    /// steady-state ingest allocation-free. On a stale (fully retained)
    /// chunk the iterator is not consumed.
    pub fn extend_runs(
        &mut self,
        start: Tick,
        len: u64,
        runs: impl IntoIterator<Item = Run>,
    ) -> bool {
        let chunk_end = start + len;
        match self.span {
            None => {
                self.span = Some((start, chunk_end));
                self.runs.extend(runs);
                if !self.runs.is_empty() {
                    self.epoch += 1;
                }
                self.evict();
                false
            }
            Some((_, end)) if start > end => {
                // A true gap: reset to the chunk verbatim (it is the
                // entire retained history; eviction waits for the next
                // append, exactly as the reset-by-clone always behaved).
                // A reset discards everything retained, so the epoch
                // always advances — nothing cached across it is valid.
                self.runs.clear();
                self.span = Some((start, chunk_end));
                self.runs.extend(runs);
                self.epoch += 1;
                true
            }
            Some((_, end)) if chunk_end <= end => false, // stale duplicate
            Some((_, end)) => {
                // Overlap or contiguous: append the novel suffix, clipping
                // a run that straddles the retained end.
                let novel = runs.into_iter().filter_map(move |r| {
                    if r.end() <= end {
                        None
                    } else if r.start() < end {
                        Some(Run::new(end, r.end() - end, r.value()))
                    } else {
                        Some(r)
                    }
                });
                self.push_runs(chunk_end, novel);
                self.evict();
                false
            }
        }
    }

    /// The most recent `ticks`-long view (shorter if less data is retained).
    pub fn latest(&self, ticks: u64) -> RleSeries {
        let end = self.end();
        let from = end.saturating_sub(ticks).max(self.start());
        self.view(from, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rle::Run;

    fn chunk(start: u64, len: u64, runs: Vec<Run>) -> RleSeries {
        RleSeries::from_parts(Tick::new(start), len, runs)
    }

    #[test]
    fn first_chunk_establishes_origin() {
        let mut w = SlidingWindow::new(100);
        assert!(w.is_empty());
        w.append_chunk(&chunk(40, 10, vec![Run::new(Tick::new(45), 1, 1.0)]));
        assert_eq!(w.start(), Tick::new(40));
        assert_eq!(w.end(), Tick::new(50));
        assert!(!w.is_empty());
    }

    #[test]
    fn eviction_keeps_capacity() {
        let mut w = SlidingWindow::new(5);
        w.append_chunk(&chunk(0, 4, vec![Run::new(Tick::new(0), 4, 1.0)]));
        w.append_chunk(&chunk(4, 4, vec![Run::new(Tick::new(4), 4, 2.0)]));
        assert_eq!(w.start(), Tick::new(3));
        assert_eq!(w.end(), Tick::new(8));
        assert_eq!(w.series().value_at(Tick::new(2)), 0.0);
        assert_eq!(w.series().value_at(Tick::new(3)), 1.0);
        assert_eq!(w.series().value_at(Tick::new(7)), 2.0);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn noncontiguous_chunk_panics() {
        let mut w = SlidingWindow::new(100);
        w.append_chunk(&chunk(0, 10, vec![]));
        w.append_chunk(&chunk(11, 10, vec![]));
    }

    #[test]
    fn view_clamps_to_span() {
        let mut w = SlidingWindow::new(100);
        w.append_chunk(&chunk(10, 10, vec![Run::new(Tick::new(12), 2, 3.0)]));
        let v = w.view(Tick::new(0), Tick::new(15));
        assert_eq!(v.start(), Tick::new(10));
        assert_eq!(v.end(), Tick::new(15));
        assert_eq!(v.value_at(Tick::new(12)), 3.0);
    }

    #[test]
    fn latest_returns_tail() {
        let mut w = SlidingWindow::new(100);
        w.append_chunk(&chunk(0, 20, vec![Run::new(Tick::new(19), 1, 5.0)]));
        let v = w.latest(4);
        assert_eq!(v.start(), Tick::new(16));
        assert_eq!(v.len(), 4);
        assert_eq!(v.value_at(Tick::new(19)), 5.0);
    }

    #[test]
    fn gap_resets_window() {
        let mut w = SlidingWindow::new(100);
        w.append_chunk(&chunk(0, 10, vec![Run::new(Tick::new(2), 1, 1.0)]));
        // Tracer restarted: next chunk starts at 50 instead of 10.
        let healed = w.append_or_reset(&chunk(50, 10, vec![Run::new(Tick::new(55), 1, 2.0)]));
        assert!(healed);
        assert_eq!(w.start(), Tick::new(50));
        assert_eq!(w.series().value_at(Tick::new(2)), 0.0);
        assert_eq!(w.series().value_at(Tick::new(55)), 2.0);
        // Contiguous appends keep working and report no healing.
        assert!(!w.append_or_reset(&chunk(60, 5, vec![])));
        assert_eq!(w.end(), Tick::new(65));
    }

    #[test]
    fn overlapping_replay_appends_only_the_novel_suffix() {
        let mut w = SlidingWindow::new(100);
        w.append_chunk(&chunk(0, 10, vec![Run::new(Tick::new(3), 1, 1.0)]));
        // Restarted tracer replays from 0 up to tick 15.
        let healed = w.append_or_reset(&chunk(
            0,
            15,
            vec![
                Run::new(Tick::new(3), 1, 1.0),
                Run::new(Tick::new(12), 1, 2.0),
            ],
        ));
        assert!(!healed);
        assert_eq!(w.end(), Tick::new(15));
        assert_eq!(w.series().value_at(Tick::new(3)), 1.0);
        assert_eq!(w.series().value_at(Tick::new(12)), 2.0);
        // A fully-stale chunk is ignored.
        assert!(!w.append_or_reset(&chunk(0, 10, vec![])));
        assert_eq!(w.end(), Tick::new(15));
    }

    #[test]
    fn replayed_run_straddling_the_end_is_clipped() {
        let mut w = SlidingWindow::new(100);
        w.append_chunk(&chunk(0, 10, vec![Run::new(Tick::new(8), 2, 1.5)]));
        // Replay covers [0, 14) with one run straddling the retained end.
        assert!(!w.append_or_reset(&chunk(0, 14, vec![Run::new(Tick::new(8), 5, 1.5)])));
        assert_eq!(w.end(), Tick::new(14));
        // The straddler's novel part merges with the retained run.
        assert_eq!(w.series().num_runs(), 1);
        assert_eq!(w.series().runs()[0], Run::new(Tick::new(8), 5, 1.5));
    }

    #[test]
    fn append_merges_run_continuing_across_chunks() {
        let mut w = SlidingWindow::new(100);
        w.append_chunk(&chunk(0, 10, vec![Run::new(Tick::new(8), 2, 1.0)]));
        w.append_chunk(&chunk(10, 10, vec![Run::new(Tick::new(10), 3, 1.0)]));
        assert_eq!(w.series().num_runs(), 1);
        assert_eq!(w.series().runs()[0], Run::new(Tick::new(8), 5, 1.0));
    }

    #[test]
    fn eviction_clips_a_straddling_run() {
        let mut w = SlidingWindow::new(6);
        w.append_chunk(&chunk(0, 8, vec![Run::new(Tick::new(1), 6, 2.0)]));
        assert_eq!(w.start(), Tick::new(2));
        assert_eq!(w.series().runs(), &[Run::new(Tick::new(2), 5, 2.0)]);
        w.append_chunk(&chunk(8, 4, vec![]));
        assert_eq!(w.start(), Tick::new(6));
        assert_eq!(w.series().runs(), &[Run::new(Tick::new(6), 1, 2.0)]);
        w.append_chunk(&chunk(12, 4, vec![]));
        assert_eq!(w.start(), Tick::new(10));
        assert_eq!(w.series().num_runs(), 0);
    }

    #[test]
    fn extend_runs_streams_without_an_intermediate_series() {
        let mut w = SlidingWindow::new(50);
        assert!(!w.extend_runs(
            Tick::new(0),
            10,
            [Run::new(Tick::new(2), 3, 1.0)].into_iter()
        ));
        assert!(!w.extend_runs(
            Tick::new(10),
            10,
            [Run::new(Tick::new(10), 2, 1.0)].into_iter()
        ));
        let mut reference = SlidingWindow::new(50);
        reference.append_chunk(&chunk(0, 10, vec![Run::new(Tick::new(2), 3, 1.0)]));
        reference.append_chunk(&chunk(10, 10, vec![Run::new(Tick::new(10), 2, 1.0)]));
        assert_eq!(w.series(), reference.series());
    }

    #[test]
    fn extend_runs_does_not_consume_a_stale_chunk() {
        let mut w = SlidingWindow::new(50);
        w.append_chunk(&chunk(0, 20, vec![]));
        let mut consumed = false;
        let healed = w.extend_runs(
            Tick::new(5),
            10,
            std::iter::from_fn(|| {
                consumed = true;
                None::<Run>
            }),
        );
        assert!(!healed);
        assert!(!consumed, "stale chunk's runs must not be read");
        assert_eq!(w.end(), Tick::new(20));
    }

    #[test]
    fn epoch_ignores_zero_only_appends_and_evictions() {
        let mut w = SlidingWindow::new(6);
        assert_eq!(w.epoch(), 0);
        // All-zero chunks never bump, even across evictions of zero spans.
        w.append_chunk(&chunk(0, 4, vec![]));
        w.append_chunk(&chunk(4, 4, vec![]));
        w.append_chunk(&chunk(8, 4, vec![]));
        assert_eq!(w.epoch(), 0);
        // A nonzero run entering bumps once.
        w.append_chunk(&chunk(12, 4, vec![Run::new(Tick::new(13), 2, 1.0)]));
        let e = w.epoch();
        assert!(e > 0);
        // Zero appends that do not yet evict the run: unchanged.
        w.append_chunk(&chunk(16, 1, vec![]));
        assert_eq!(w.epoch(), e);
        // The run starts clipping out of retention: bumps again.
        w.append_chunk(&chunk(17, 4, vec![]));
        assert!(w.epoch() > e);
    }

    #[test]
    fn epoch_bumps_on_gap_reset_and_merge() {
        let mut w = SlidingWindow::new(100);
        w.append_chunk(&chunk(0, 10, vec![Run::new(Tick::new(8), 2, 1.0)]));
        let e0 = w.epoch();
        // A merged continuation is still new content.
        w.append_chunk(&chunk(10, 10, vec![Run::new(Tick::new(10), 3, 1.0)]));
        let e1 = w.epoch();
        assert!(e1 > e0);
        // A gap reset always bumps, even to an all-zero chunk.
        assert!(w.append_or_reset(&chunk(50, 10, vec![])));
        assert!(w.epoch() > e1);
    }

    #[test]
    fn unchanged_epoch_means_identical_runs() {
        let mut w = SlidingWindow::new(40);
        w.append_chunk(&chunk(0, 10, vec![Run::new(Tick::new(4), 3, 2.0)]));
        let e = w.epoch();
        let before = w.series();
        w.append_chunk(&chunk(10, 10, vec![]));
        w.append_chunk(&chunk(20, 10, vec![]));
        assert_eq!(w.epoch(), e);
        assert_eq!(w.series().runs(), before.runs());
    }

    #[test]
    fn has_runs_in_finds_intersections() {
        let mut w = SlidingWindow::new(100);
        w.append_chunk(&chunk(0, 30, vec![Run::new(Tick::new(10), 5, 1.0)]));
        assert!(w.has_runs_in(Tick::new(0), Tick::new(30)));
        assert!(w.has_runs_in(Tick::new(14), Tick::new(16)));
        assert!(w.has_runs_in(Tick::new(0), Tick::new(11)));
        assert!(!w.has_runs_in(Tick::new(0), Tick::new(10)));
        assert!(!w.has_runs_in(Tick::new(15), Tick::new(30)));
        assert!(!w.has_runs_in(Tick::new(20), Tick::new(20)));
        assert!(!SlidingWindow::new(5).has_runs_in(Tick::new(0), Tick::new(100)));
    }

    #[test]
    fn empty_window_views_are_empty() {
        let w = SlidingWindow::new(10);
        assert_eq!(w.series().len(), 0);
        assert_eq!(w.view(Tick::new(5), Tick::new(9)).len(), 4);
        assert_eq!(w.latest(3).len(), 0);
    }
}
