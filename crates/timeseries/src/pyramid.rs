//! Multi-resolution companion windows for coarse-to-fine screening.
//!
//! A [`DecimatedWindow`] consumes the same chunk stream as a
//! [`SlidingWindow`] but retains the signal decimated by a factor `k`:
//! coarse tick `j` holds the sum of the fine ticks `[j·k, (j+1)·k)`.
//! Coarse ticks are aligned to absolute multiples of `k`, so the retained
//! coarse series equals [`RleSeries::decimate`] of the concatenated fine
//! stream — maintained incrementally in O(chunk runs) per ingest instead
//! of re-decimating the window.
//!
//! Fine ticks that do not yet complete a coarse block are buffered in a
//! short tail (`< k` ticks plus whatever the latest chunk added) and
//! folded as soon as their block fills; [`DecimatedWindow::tail`] exposes
//! the buffered remainder so screening bounds can account for the not-yet-
//! folded mass exactly.

use crate::rle::RleSeries;
use crate::time::Tick;
use crate::window::SlidingWindow;

/// A sliding window over the `k`-decimated image of a fine chunk stream.
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::{pyramid::DecimatedWindow, RleSeries, Run, Tick};
/// let mut w = DecimatedWindow::new(100, 4);
/// w.append_or_reset(&RleSeries::from_parts(
///     Tick::new(0), 10, vec![Run::new(Tick::new(1), 7, 1.0)],
/// ));
/// // Ticks [0, 8) complete two coarse blocks; [8, 10) stays in the tail.
/// assert_eq!(w.coarse().end(), Tick::new(2));
/// assert_eq!(w.coarse().series().value_at(Tick::new(0)), 3.0);
/// assert_eq!(w.coarse().series().value_at(Tick::new(1)), 4.0);
/// ```
#[derive(Debug, Clone)]
pub struct DecimatedWindow {
    factor: u64,
    coarse: SlidingWindow,
    /// The fine-resolution suffix not yet folded into `coarse`: spans
    /// `[folded_end·k, fine_end)`. `None` before any data.
    tail: Option<RleSeries>,
    /// Change-epoch contribution of the buffered tail: bumped when nonzero
    /// content enters the tail or the pyramid resets. Folds move content
    /// into `coarse`, whose own epoch then advances; [`epoch`] sums both,
    /// so it is monotone and only ever stable when *no* nonzero content
    /// moved anywhere in the pyramid.
    ///
    /// [`epoch`]: DecimatedWindow::epoch
    tail_epoch: u64,
}

impl DecimatedWindow {
    /// Creates an empty decimated window mirroring a fine window of
    /// `fine_capacity` ticks, decimating by `factor`.
    ///
    /// The coarse retention is sized so that every coarse block
    /// overlapping the fine window's retained span stays available.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero or `fine_capacity` is zero.
    pub fn new(fine_capacity: u64, factor: u64) -> Self {
        assert!(factor > 0, "decimation factor must be positive");
        DecimatedWindow {
            factor,
            coarse: SlidingWindow::new(fine_capacity.div_ceil(factor) + 2),
            tail: None,
            tail_epoch: 0,
        }
    }

    /// The decimation factor `k`.
    pub fn factor(&self) -> u64 {
        self.factor
    }

    /// The pyramid's change epoch: the coarse window's
    /// [`SlidingWindow::epoch`] plus the tail's contribution. Stable
    /// across ingests of all-zero chunks (and folds of all-zero blocks);
    /// advances whenever a nonzero run enters the pyramid, is evicted
    /// from coarse retention, or the stream resets across a gap.
    pub fn epoch(&self) -> u64 {
        self.coarse.epoch() + self.tail_epoch
    }

    /// The retained coarse window (in coarse ticks of `k` fine ticks each).
    pub fn coarse(&self) -> &SlidingWindow {
        &self.coarse
    }

    /// One past the last fine tick ingested (folded or buffered).
    pub fn fine_end(&self) -> Tick {
        self.tail.as_ref().map(|t| t.end()).unwrap_or(Tick::ZERO)
    }

    /// The buffered fine suffix whose coarse block has not filled yet
    /// (empty before any data). Its span is `[coarse().end()·k, fine_end)`.
    pub fn tail(&self) -> RleSeries {
        self.tail
            .clone()
            .unwrap_or_else(|| RleSeries::empty(Tick::ZERO, 0))
    }

    /// Ingests the next chunk with the same discontinuity semantics as
    /// [`SlidingWindow::append_or_reset`]: a gap resets the coarse window
    /// to the chunk's decimation (returns `true`), an overlapping replay
    /// contributes only its novel suffix, and a stale duplicate is
    /// ignored (both return `false`).
    pub fn append_or_reset(&mut self, chunk: &RleSeries) -> bool {
        let Some(tail) = &mut self.tail else {
            if chunk.num_runs() > 0 {
                self.tail_epoch += 1;
            }
            self.tail = Some(chunk.clone());
            self.fold();
            return false;
        };
        let end = tail.end();
        if chunk.start() > end {
            // Frames lost: restart the pyramid at the chunk's origin. A
            // reset always bumps the epoch — everything cached across it
            // (even over all-zero data) is invalid. The replaced coarse
            // window restarts its own epoch at zero, so fold its count
            // into the tail's to keep [`epoch`](Self::epoch) monotone.
            self.tail_epoch += self.coarse.epoch() + 1;
            self.coarse = SlidingWindow::new(self.coarse.capacity());
            self.tail = Some(chunk.clone());
            self.fold();
            true
        } else if chunk.end() <= end {
            false // stale duplicate
        } else {
            let suffix = chunk.slice(end, chunk.end());
            if suffix.num_runs() > 0 {
                self.tail_epoch += 1;
            }
            tail.append_chunk(&suffix);
            self.fold();
            false
        }
    }

    /// Ingests an *already decimated* chunk — coarse ticks of `k` fine
    /// ticks each — straight into the coarse window, bypassing the fold.
    /// This is the wire-ingest path for level-tagged reduction entries,
    /// where the tracer decimated the blocks before shipping.
    ///
    /// Discontinuity semantics follow [`SlidingWindow::append_or_reset`]
    /// on the *coarse* axis: a gap (for example after suppressed all-zero
    /// chunks) resets the coarse window to this chunk and returns `true`.
    /// Any buffered fine tail is discarded — once the source streams
    /// coarse, buffered fine ticks can never complete their block.
    pub fn append_coarse_or_reset(&mut self, chunk: &RleSeries) -> bool {
        // Discarding a nonzero buffered tail is a content change.
        if self.tail.as_ref().is_some_and(|t| t.num_runs() > 0) {
            self.tail_epoch += 1;
        }
        self.tail = Some(RleSeries::empty(
            Tick::new(chunk.end().index() * self.factor),
            0,
        ));
        self.coarse.append_or_reset(chunk)
    }

    /// Folds every complete coarse block out of the tail into the coarse
    /// window, leaving the sub-block remainder buffered.
    fn fold(&mut self) {
        let Some(tail) = &self.tail else { return };
        let k = self.factor;
        let boundary = Tick::new((tail.end().index() / k) * k);
        if boundary <= tail.start() {
            return; // no complete block yet
        }
        // Contiguity holds by construction: the previous fold ended at
        // this fold's first coarse tick.
        let chunk = tail.slice(tail.start(), boundary).decimate(k);
        self.coarse.append_chunk(&chunk);
        self.tail = Some(tail.slice(boundary, tail.end()));
    }
}

/// Decimates a density series by `k` in the *count* domain: amplitudes are
/// read as `√(message count)` per tick (the density estimator's encoding),
/// counts are summed per coarse block, and each coarse tick carries
/// `√(block count)` — so the coarse image is itself a density series at
/// resolution `k·τ` whose amplitudes stay integer-count codable on the
/// wire. Blocks are aligned to absolute multiples of `k`, exactly like
/// [`RleSeries::decimate`].
///
/// Amplitudes that are not `√n` for an integer `n` (never produced by the
/// estimator) degrade gracefully: their squared value joins the block sum
/// and the result is `√(Σ v²)` — a root-sum-square coarse amplitude.
///
/// The edge-reduction tracer path feeds this block-aligned slices of
/// retained fine chunks; a partial edge block would simply under-count.
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::{pyramid, RleSeries, Run, Tick};
/// // Four ticks of count 4 (amp 2.0) in block 0, one tick of count 9 in block 1.
/// let s = RleSeries::from_parts(Tick::new(0), 8, vec![
///     Run::new(Tick::new(0), 4, 2.0),
///     Run::new(Tick::new(5), 1, 3.0),
/// ]);
/// let c = pyramid::decimate_counts(&s, 4);
/// assert_eq!(c.value_at(Tick::new(0)), 16f64.sqrt());
/// assert_eq!(c.value_at(Tick::new(1)), 9f64.sqrt());
/// ```
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn decimate_counts(series: &RleSeries, k: u64) -> RleSeries {
    assert!(k > 0, "decimation factor must be positive");
    let cstart = Tick::new(series.start().index() / k);
    let cend = Tick::new(series.end().index().div_ceil(k));
    let mut runs: Vec<crate::rle::Run> = Vec::new();
    let mut flush = |block: u64, sum: f64| {
        if sum <= 0.0 {
            return;
        }
        // Snap to √n for the integer block count so the amplitude stays
        // losslessly int-codable on the wire.
        let n = sum.round();
        let value = if n >= 1.0 && (sum - n).abs() <= 1e-6 * n {
            n.sqrt()
        } else {
            sum.sqrt()
        };
        let at = Tick::new(block);
        if let Some(last) = runs.last_mut() {
            if last.end() == at && last.value().to_bits() == value.to_bits() {
                last.extend(1);
                return;
            }
        }
        runs.push(crate::rle::Run::new(at, 1, value));
    };
    let mut block = u64::MAX;
    let mut sum = 0.0f64;
    for r in series.runs() {
        let v2 = r.value() * r.value();
        let mut s = r.start().index();
        let e = r.end().index();
        while s < e {
            let b = s / k;
            if b != block {
                if block != u64::MAX {
                    flush(block, sum);
                }
                block = b;
                sum = 0.0;
            }
            let take = e.min((b + 1) * k) - s;
            sum += take as f64 * v2;
            s += take;
        }
    }
    if block != u64::MAX {
        flush(block, sum);
    }
    RleSeries::from_parts(cstart, cend - cstart, runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rle::Run;

    fn chunk(start: u64, len: u64, runs: Vec<Run>) -> RleSeries {
        RleSeries::from_parts(Tick::new(start), len, runs)
    }

    /// Feeds `chunks` through both a fine `SlidingWindow` (large capacity,
    /// no eviction) and a `DecimatedWindow`, then checks the coarse state
    /// equals the decimation of the retained fine stream.
    fn assert_tracks_decimation(chunks: &[RleSeries], k: u64) {
        let mut fine = SlidingWindow::new(1 << 40);
        let mut dec = DecimatedWindow::new(1 << 40, k);
        for c in chunks {
            let healed = fine.append_or_reset(c);
            assert_eq!(dec.append_or_reset(c), healed);
            let whole = fine.series();
            let boundary = Tick::new((whole.end().index() / k) * k);
            let want = whole.slice(whole.start(), boundary).decimate(k);
            let got = dec.coarse().series();
            assert_eq!(got, want, "after chunk ending {:?}", c.end());
            let tail_start = boundary.max(whole.start());
            assert_eq!(dec.tail(), whole.slice(tail_start, whole.end()));
            assert_eq!(dec.fine_end(), whole.end());
        }
    }

    #[test]
    fn tracks_decimation_across_chunk_boundaries() {
        assert_tracks_decimation(
            &[
                chunk(0, 10, vec![Run::new(Tick::new(1), 7, 1.0)]),
                chunk(10, 3, vec![Run::new(Tick::new(10), 3, 2.0)]),
                chunk(13, 1, vec![]),
                chunk(14, 22, vec![Run::new(Tick::new(20), 10, 1.0)]),
            ],
            4,
        );
    }

    #[test]
    fn unaligned_origin_and_sub_block_chunks() {
        assert_tracks_decimation(
            &[
                chunk(5, 2, vec![Run::new(Tick::new(5), 2, 3.0)]),
                chunk(7, 2, vec![]),
                chunk(9, 2, vec![Run::new(Tick::new(9), 1, 1.0)]),
                chunk(11, 2, vec![Run::new(Tick::new(11), 2, 1.0)]),
            ],
            8,
        );
    }

    #[test]
    fn gap_resets_like_the_fine_window() {
        let mut dec = DecimatedWindow::new(1 << 20, 4);
        dec.append_or_reset(&chunk(0, 8, vec![Run::new(Tick::new(0), 8, 1.0)]));
        assert_eq!(dec.coarse().series().value_at(Tick::new(0)), 4.0);
        let healed = dec.append_or_reset(&chunk(100, 8, vec![Run::new(Tick::new(102), 4, 2.0)]));
        assert!(healed);
        // Old coarse data is gone; the new origin tick 100 starts block 25.
        assert_eq!(dec.coarse().start(), Tick::new(25));
        assert_eq!(dec.coarse().series().value_at(Tick::new(0)), 0.0);
        assert_eq!(dec.coarse().series().value_at(Tick::new(25)), 4.0);
    }

    #[test]
    fn replay_and_duplicates_fold_once() {
        assert_tracks_decimation(
            &[
                chunk(0, 10, vec![Run::new(Tick::new(2), 5, 1.0)]),
                // Restarted tracer replays everything plus two new ticks.
                chunk(
                    0,
                    12,
                    vec![
                        Run::new(Tick::new(2), 5, 1.0),
                        Run::new(Tick::new(10), 2, 2.0),
                    ],
                ),
                // Fully stale chunk: ignored.
                chunk(0, 6, vec![Run::new(Tick::new(2), 3, 9.0)]),
            ],
            4,
        );
    }

    #[test]
    fn epoch_tracks_content_not_zero_ingest() {
        let mut dec = DecimatedWindow::new(1 << 20, 4);
        assert_eq!(dec.epoch(), 0);
        // Zero chunks fold zero blocks: no epoch movement.
        dec.append_or_reset(&chunk(0, 8, vec![]));
        dec.append_or_reset(&chunk(8, 8, vec![]));
        assert_eq!(dec.epoch(), 0);
        // Nonzero content advances the epoch.
        dec.append_or_reset(&chunk(16, 8, vec![Run::new(Tick::new(17), 3, 1.0)]));
        let e = dec.epoch();
        assert!(e > 0);
        // Back to zero traffic: stable again.
        dec.append_or_reset(&chunk(24, 8, vec![]));
        assert_eq!(dec.epoch(), e);
        // A gap reset always bumps, even over all-zero data.
        assert!(dec.append_or_reset(&chunk(100, 8, vec![])));
        assert!(dec.epoch() > e);
    }

    #[test]
    fn coarse_capacity_covers_fine_retention() {
        let dec = DecimatedWindow::new(100, 8);
        assert!(dec.coarse().capacity() > 100u64.div_ceil(8));
    }

    #[test]
    fn decimate_counts_sums_counts_per_absolute_block() {
        // Counts 2,2,2 in block 1 ([4,8)), count 5 in block 2.
        let s = chunk(
            3,
            8,
            vec![
                Run::new(Tick::new(4), 3, 2f64.sqrt()),
                Run::new(Tick::new(9), 1, 5f64.sqrt()),
            ],
        );
        let c = decimate_counts(&s, 4);
        assert_eq!(c.start(), Tick::new(0));
        assert_eq!(c.end(), Tick::new(3));
        assert_eq!(c.value_at(Tick::new(0)), 0.0);
        assert_eq!(c.value_at(Tick::new(1)).to_bits(), 6f64.sqrt().to_bits());
        assert_eq!(c.value_at(Tick::new(2)).to_bits(), 5f64.sqrt().to_bits());
    }

    #[test]
    fn decimate_counts_amplitudes_stay_sqrt_of_integers() {
        // √2 squares to 2.0000000000000004 in f64; the block sum must snap
        // back to the exact integer count so wire int-amp coding applies.
        let s = chunk(0, 16, vec![Run::new(Tick::new(0), 16, 2f64.sqrt())]);
        let c = decimate_counts(&s, 8);
        for t in [0u64, 1] {
            assert_eq!(c.value_at(Tick::new(t)).to_bits(), 16f64.sqrt().to_bits());
        }
    }

    #[test]
    fn decimate_counts_merges_equal_blocks_and_skips_empty_ones() {
        let s = chunk(0, 32, vec![Run::new(Tick::new(0), 16, 1.0)]);
        let c = decimate_counts(&s, 8);
        assert_eq!(c.num_runs(), 1);
        assert_eq!(c.runs()[0], Run::new(Tick::new(0), 2, 8f64.sqrt()));
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn decimate_counts_long_run_spanning_many_blocks() {
        let s = chunk(0, 4096, vec![Run::new(Tick::new(3), 4000, 1.0)]);
        let c = decimate_counts(&s, 64);
        let mut total = 0.0;
        for r in c.runs() {
            total += r.len() as f64 * r.value() * r.value();
        }
        assert!((total - 4000.0).abs() < 1e-9);
    }
}
