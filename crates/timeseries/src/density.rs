//! The density-function estimator (paper Section 3.5).
//!
//! The message traces collected at service nodes are converted to
//! time-series data using a density function `d(i)`: the square root of the
//! number of messages in the rectangular sampling window
//! `[i·τ − ω/2, i·τ + ω/2]` centered on tick `i`. The square root damps the
//! dominance of large bursts so correlation spikes reflect *timing*
//! alignment rather than sheer volume; the sampling window `ω` (an integer
//! multiple of `τ`, typically `50·τ`) smooths delay variance and suppresses
//! noise-induced spurious paths. Ticks whose window contains no messages
//! are not recorded at all — this is the input to burst compression.

use crate::sparse::{SparseEntry, SparseSeries};
use crate::time::{Nanos, Quanta, Tick};
use std::collections::BTreeMap;

/// Streaming estimator turning non-decreasing message timestamps into a
/// sparse density series.
///
/// Used by tracer agents: push each observed message's timestamp, then
/// periodically [`drain_chunk`](DensityEstimator::drain_chunk) finalized
/// ticks for streaming (every `ΔW`), or [`finish`](DensityEstimator::finish)
/// to flush everything for offline analysis.
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::{Quanta, Nanos, density::DensityEstimator};
/// let mut est = DensityEstimator::new(Quanta::from_millis(1), 3);
/// est.push(Nanos::from_millis(5));
/// est.push(Nanos::from_millis(5));
/// let series = est.finish();
/// assert_eq!(series.value_at(5.into()), 2f64.sqrt());
/// // ω = 3 ticks, so the window [4ms, 6ms] also covers ticks 4 and 6.
/// assert_eq!(series.value_at(4.into()), 2f64.sqrt());
/// assert_eq!(series.value_at(7.into()), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct DensityEstimator {
    quanta: Quanta,
    omega_half_ns: u64,
    /// Count deltas at tick boundaries not yet integrated.
    diffs: BTreeMap<u64, i64>,
    /// Next tick to be emitted.
    cursor: u64,
    /// Running message count at `cursor`.
    running: i64,
    /// Largest timestamp pushed so far (monotonicity check).
    last_ts: Option<Nanos>,
    /// Highest tick any pushed message can influence.
    max_hi: u64,
}

impl DensityEstimator {
    /// Creates an estimator with time quantum `quanta` (`τ`) and sampling
    /// window of `omega_ticks · τ` (`ω`).
    ///
    /// # Panics
    ///
    /// Panics if `omega_ticks` is zero.
    pub fn new(quanta: Quanta, omega_ticks: u64) -> Self {
        assert!(omega_ticks > 0, "sampling window must be positive");
        DensityEstimator {
            quanta,
            omega_half_ns: omega_ticks * quanta.duration().as_nanos() / 2,
            diffs: BTreeMap::new(),
            cursor: 0,
            running: 0,
            last_ts: None,
            max_hi: 0,
        }
    }

    /// One-shot conversion of a sorted timestamp slice.
    ///
    /// # Panics
    ///
    /// Panics if timestamps are not non-decreasing.
    pub fn from_timestamps(quanta: Quanta, omega_ticks: u64, timestamps: &[Nanos]) -> SparseSeries {
        let mut est = DensityEstimator::new(quanta, omega_ticks);
        for &ts in timestamps {
            est.push(ts);
        }
        est.finish()
    }

    /// The configured time quantum.
    pub fn quanta(&self) -> Quanta {
        self.quanta
    }

    /// Records one message observed at `ts`.
    ///
    /// # Panics
    ///
    /// Panics if `ts` precedes a previously pushed timestamp, or if the
    /// message would affect an already-drained tick.
    pub fn push(&mut self, ts: Nanos) {
        if let Some(last) = self.last_ts {
            assert!(ts >= last, "timestamps must be non-decreasing");
        }
        self.last_ts = Some(ts);
        let tau = self.quanta.duration().as_nanos();
        let s = ts.as_nanos();
        // lo = ceil((s - ω/2) / τ) clamped to 0; hi = floor((s + ω/2) / τ).
        let lo = if s <= self.omega_half_ns {
            0
        } else {
            (s - self.omega_half_ns).div_ceil(tau)
        };
        let hi = (s + self.omega_half_ns) / tau;
        assert!(
            lo >= self.cursor,
            "message affects an already-drained tick (drained too eagerly)"
        );
        *self.diffs.entry(lo).or_insert(0) += 1;
        *self.diffs.entry(hi + 1).or_insert(0) -= 1;
        self.max_hi = self.max_hi.max(hi);
    }

    /// The first tick a message at `ts` would influence; ticks strictly
    /// before this are final once all messages up to `ts` are pushed.
    pub fn frontier(&self, ts: Nanos) -> Tick {
        let tau = self.quanta.duration().as_nanos();
        let s = ts.as_nanos();
        let lo = if s <= self.omega_half_ns {
            0
        } else {
            (s - self.omega_half_ns).div_ceil(tau)
        };
        Tick::new(lo)
    }

    /// Emits the finalized density series for `[cursor, end)` and advances
    /// the cursor.
    ///
    /// The caller guarantees that every message with a sampling window
    /// touching a tick before `end` has already been pushed (i.e. all
    /// messages with timestamp `< end·τ + ω/2`).
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes the current cursor.
    pub fn drain_chunk(&mut self, end: Tick) -> SparseSeries {
        let end = end.index();
        assert!(end >= self.cursor, "drain cursor moved backwards");
        let start = self.cursor;
        let mut entries = Vec::new();
        // Integrate diffs over [start, end). Between boundary keys the count
        // is constant, so fill whole stretches at once.
        let keys: Vec<u64> = self.diffs.range(..end).map(|(&k, _)| k).collect();
        let mut pos = start;
        let mut running = self.running;
        for k in keys {
            let k_clamped = k.max(start);
            if running > 0 {
                for t in pos..k_clamped {
                    entries.push(SparseEntry::new(Tick::new(t), (running as f64).sqrt()));
                }
            }
            pos = k_clamped;
            running += self.diffs.remove(&k).expect("key just observed");
        }
        if running > 0 {
            for t in pos..end {
                entries.push(SparseEntry::new(Tick::new(t), (running as f64).sqrt()));
            }
        }
        self.cursor = end;
        self.running = running;
        SparseSeries::from_parts(Tick::new(start), end - start, entries)
    }

    /// Flushes all remaining ticks and consumes the estimator.
    ///
    /// When used incrementally (after [`drain_chunk`] calls) this returns
    /// only the not-yet-drained tail; otherwise the full series from tick 0.
    ///
    /// [`drain_chunk`]: DensityEstimator::drain_chunk
    pub fn finish(mut self) -> SparseSeries {
        let end = Tick::new((self.max_hi + 1).max(self.cursor));
        self.drain_chunk(end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(omega: u64) -> DensityEstimator {
        DensityEstimator::new(Quanta::from_millis(1), omega)
    }

    #[test]
    fn single_message_covers_omega_window() {
        let mut e = est(5); // ω/2 = 2.5ms
        e.push(Nanos::from_millis(10));
        let s = e.finish();
        // ticks 8..=12 covered (|t-10| <= 2.5)
        for t in 8..=12 {
            assert_eq!(s.value_at(Tick::new(t)), 1.0, "tick {t}");
        }
        assert_eq!(s.value_at(Tick::new(7)), 0.0);
        assert_eq!(s.value_at(Tick::new(13)), 0.0);
    }

    #[test]
    fn density_is_sqrt_of_count() {
        let mut e = est(1); // window = exactly the tick (±0.5ms)
        for _ in 0..9 {
            e.push(Nanos::from_millis(4));
        }
        let s = e.finish();
        assert_eq!(s.value_at(Tick::new(4)), 3.0);
        assert_eq!(s.value_at(Tick::new(5)), 0.0);
    }

    #[test]
    fn message_near_zero_clamps_window() {
        let mut e = est(10);
        e.push(Nanos::from_millis(1));
        let s = e.finish();
        assert_eq!(s.value_at(Tick::new(0)), 1.0);
        assert_eq!(s.value_at(Tick::new(6)), 1.0);
        assert_eq!(s.value_at(Tick::new(7)), 0.0);
    }

    #[test]
    fn chunked_drain_equals_one_shot() {
        let ts: Vec<Nanos> = [3u64, 4, 4, 9, 15, 15, 15, 22, 40]
            .iter()
            .map(|&ms| Nanos::from_millis(ms))
            .collect();
        let one_shot = DensityEstimator::from_timestamps(Quanta::from_millis(1), 5, &ts);

        let mut chunked = DensityEstimator::new(Quanta::from_millis(1), 5);
        let mut acc: Option<SparseSeries> = None;
        let mut i = 0;
        // Drain at tick 10 after pushing everything with ts < 10ms + 2.5ms.
        for drain_at in [10u64, 30] {
            let horizon = Nanos::from_millis(drain_at) + Nanos::from_micros(2_500);
            while i < ts.len() && ts[i] < horizon {
                chunked.push(ts[i]);
                i += 1;
            }
            let chunk = chunked.drain_chunk(Tick::new(drain_at));
            match &mut acc {
                None => acc = Some(chunk),
                Some(a) => a.append_chunk(&chunk),
            }
        }
        while i < ts.len() {
            chunked.push(ts[i]);
            i += 1;
        }
        let tail = chunked.finish();
        let mut acc = acc.expect("chunks drained");
        acc.append_chunk(&tail);

        for t in 0..one_shot.end().index() {
            assert_eq!(
                acc.value_at(Tick::new(t)),
                one_shot.value_at(Tick::new(t)),
                "tick {t}"
            );
        }
    }

    #[test]
    fn overlapping_bursts_accumulate() {
        let mut e = est(5);
        e.push(Nanos::from_millis(10));
        e.push(Nanos::from_millis(12));
        let s = e.finish();
        // tick 11 sees both (dist 1 and 1), tick 9 sees only the first.
        assert_eq!(s.value_at(Tick::new(11)), 2f64.sqrt());
        assert_eq!(s.value_at(Tick::new(9)), 1.0);
        assert_eq!(s.value_at(Tick::new(14)), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_travel() {
        let mut e = est(5);
        e.push(Nanos::from_millis(10));
        e.push(Nanos::from_millis(9));
    }

    #[test]
    #[should_panic(expected = "already-drained")]
    fn rejects_message_behind_drain_cursor() {
        let mut e = est(1);
        e.push(Nanos::from_millis(2));
        let _ = e.drain_chunk(Tick::new(10));
        e.push(Nanos::from_millis(5)); // affects tick 5 < 10
    }

    #[test]
    fn frontier_marks_first_affected_tick() {
        let e = est(5);
        assert_eq!(e.frontier(Nanos::from_millis(10)), Tick::new(8));
        assert_eq!(e.frontier(Nanos::from_millis(1)), Tick::new(0));
    }

    #[test]
    fn empty_estimator_finishes_empty() {
        let e = est(5);
        let s = e.finish();
        assert_eq!(s.num_entries(), 0);
    }
}
