//! Zero-suppressed ("burst compression") series representation.
//!
//! Enterprise packet traffic is bursty: dense activity separated by long
//! quiet zones (Section 3.4, third optimization). The sparse representation
//! stores only non-zero density entries `(t, n)`; quiet zones cost nothing
//! to store *and* nothing to correlate.

use crate::dense::DenseSeries;
use crate::rle::{RleSeries, Run};
use crate::stats::SeriesStats;
use crate::time::Tick;
use serde::{Deserialize, Serialize};

/// One non-zero sample of a sparse signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparseEntry {
    tick: Tick,
    value: f64,
}

impl SparseEntry {
    /// Creates an entry.
    pub fn new(tick: Tick, value: f64) -> Self {
        SparseEntry { tick, value }
    }

    /// The tick index.
    pub fn tick(&self) -> Tick {
        self.tick
    }

    /// The sample value.
    pub fn value(&self) -> f64 {
        self.value
    }
}

/// A zero-suppressed signal over the logical span `[start, start + len)`.
///
/// Entries are strictly increasing in tick and all non-zero; ticks of the
/// span without an entry are implicitly zero. The logical span is retained
/// so that window-wide statistics (means over `W/τ` ticks, Eq. 1) stay
/// correct after compression.
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::{SparseSeries, SparseEntry, Tick};
/// let s = SparseSeries::from_parts(
///     Tick::new(0),
///     10,
///     vec![SparseEntry::new(Tick::new(2), 1.0), SparseEntry::new(Tick::new(7), 2.0)],
/// );
/// assert_eq!(s.value_at(Tick::new(7)), 2.0);
/// assert_eq!(s.value_at(Tick::new(3)), 0.0);
/// assert_eq!(s.stats().mean(), 0.3);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseSeries {
    start: Tick,
    len: u64,
    entries: Vec<SparseEntry>,
}

impl SparseSeries {
    /// Creates an empty (all-zero) series over `[start, start + len)`.
    pub fn empty(start: Tick, len: u64) -> Self {
        SparseSeries {
            start,
            len,
            entries: Vec::new(),
        }
    }

    /// Creates a series from parts.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if entries are not strictly increasing in
    /// tick, contain zeros, or fall outside the span.
    pub fn from_parts(start: Tick, len: u64, entries: Vec<SparseEntry>) -> Self {
        #[cfg(debug_assertions)]
        {
            let mut prev: Option<Tick> = None;
            for e in &entries {
                debug_assert!(e.value != 0.0, "sparse entry with zero value");
                debug_assert!(
                    e.tick >= start && e.tick.index() < start.index() + len,
                    "sparse entry outside span"
                );
                if let Some(p) = prev {
                    debug_assert!(e.tick > p, "sparse entries out of order");
                }
                prev = Some(e.tick);
            }
        }
        SparseSeries {
            start,
            len,
            entries,
        }
    }

    /// First tick of the logical span.
    pub fn start(&self) -> Tick {
        self.start
    }

    /// One past the last tick of the logical span.
    pub fn end(&self) -> Tick {
        self.start + self.len
    }

    /// Logical span length in ticks (zeros included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the logical span is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of stored (non-zero) entries.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// The stored entries, ordered by tick.
    pub fn entries(&self) -> &[SparseEntry] {
        &self.entries
    }

    /// The value at tick `t` (zero if unstored or outside the span).
    pub fn value_at(&self, t: Tick) -> f64 {
        match self.entries.binary_search_by_key(&t, |e| e.tick) {
            Ok(i) => self.entries[i].value,
            Err(_) => 0.0,
        }
    }

    /// Moments over the logical span (zeros included).
    pub fn stats(&self) -> SeriesStats {
        SeriesStats::from_entries(self.entries.iter().map(|e| e.value), self.len)
    }

    /// Materializes the signal as a dense series over the same span.
    pub fn to_dense(&self) -> DenseSeries {
        let mut d = DenseSeries::zeros(self.start, self.len);
        for e in &self.entries {
            d.set(e.tick, e.value);
        }
        d
    }

    /// Run-length-encodes the signal, preserving the logical span.
    ///
    /// Adjacent ticks with bit-identical values collapse into one run;
    /// gaps (implicit zeros) terminate runs and are not stored.
    pub fn to_rle(&self) -> RleSeries {
        let mut runs: Vec<Run> = Vec::new();
        for e in &self.entries {
            match runs.last_mut() {
                Some(r)
                    if r.start().index() + r.len() == e.tick.index()
                        && r.value().to_bits() == e.value.to_bits() =>
                {
                    r.extend(1);
                }
                _ => runs.push(Run::new(e.tick, 1, e.value)),
            }
        }
        RleSeries::from_parts(self.start, self.len, runs)
    }

    /// Returns the sub-series covering `[from, to)` (entries outside are
    /// dropped; the logical span becomes exactly `[from, to)`).
    pub fn slice(&self, from: Tick, to: Tick) -> SparseSeries {
        let lo = self.entries.partition_point(|e| e.tick < from);
        let hi = self.entries.partition_point(|e| e.tick < to);
        SparseSeries {
            start: from,
            len: to.checked_sub(from).unwrap_or(0),
            entries: self.entries[lo..hi].to_vec(),
        }
    }

    /// Concatenates a later chunk onto this series.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` does not begin exactly at `self.end()`.
    pub fn append_chunk(&mut self, chunk: &SparseSeries) {
        assert_eq!(
            chunk.start,
            self.end(),
            "appended chunk must be contiguous with the series"
        );
        self.entries.extend_from_slice(&chunk.entries);
        self.len += chunk.len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseSeries {
        SparseSeries::from_parts(
            Tick::new(10),
            20,
            vec![
                SparseEntry::new(Tick::new(11), 1.0),
                SparseEntry::new(Tick::new(12), 1.0),
                SparseEntry::new(Tick::new(20), 3.0),
            ],
        )
    }

    #[test]
    fn value_lookup() {
        let s = sample();
        assert_eq!(s.value_at(Tick::new(11)), 1.0);
        assert_eq!(s.value_at(Tick::new(13)), 0.0);
        assert_eq!(s.value_at(Tick::new(20)), 3.0);
    }

    #[test]
    fn dense_round_trip() {
        let s = sample();
        let d = s.to_dense();
        assert_eq!(d.start(), s.start());
        assert_eq!(d.len(), s.len());
        assert_eq!(d.to_sparse(), s);
    }

    #[test]
    fn rle_merges_adjacent_equal_values() {
        let s = sample();
        let r = s.to_rle();
        assert_eq!(r.num_runs(), 2); // (11,2,1.0) and (20,1,3.0)
        assert_eq!(r.to_sparse(), s);
    }

    #[test]
    fn slice_reframes_span() {
        let s = sample();
        let sub = s.slice(Tick::new(12), Tick::new(21));
        assert_eq!(sub.start(), Tick::new(12));
        assert_eq!(sub.len(), 9);
        assert_eq!(sub.num_entries(), 2);
        assert_eq!(sub.value_at(Tick::new(11)), 0.0);
        assert_eq!(sub.value_at(Tick::new(20)), 3.0);
    }

    #[test]
    fn slice_empty_range() {
        let s = sample();
        let sub = s.slice(Tick::new(15), Tick::new(15));
        assert_eq!(sub.len(), 0);
        assert_eq!(sub.num_entries(), 0);
    }

    #[test]
    fn append_chunk_extends_span() {
        let mut s = sample();
        let chunk =
            SparseSeries::from_parts(Tick::new(30), 5, vec![SparseEntry::new(Tick::new(31), 2.0)]);
        s.append_chunk(&chunk);
        assert_eq!(s.end(), Tick::new(35));
        assert_eq!(s.value_at(Tick::new(31)), 2.0);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn append_noncontiguous_chunk_panics() {
        let mut s = sample();
        let chunk = SparseSeries::empty(Tick::new(31), 5);
        s.append_chunk(&chunk);
    }

    #[test]
    fn stats_account_for_implicit_zeros() {
        let s = sample();
        // sum = 5 over 20 ticks
        assert!((s.stats().mean() - 0.25).abs() < 1e-12);
    }
}
