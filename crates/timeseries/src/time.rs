//! Time newtypes: wall-clock nanoseconds, the time quantum `τ`, and tick
//! indices.
//!
//! E2EProf's analysis operates on discretized time. The *time quantum*
//! [`Quanta`] (`τ` in the paper) is the smallest service delay of interest;
//! every signal is indexed by [`Tick`]s — integer multiples of `τ`.
//! Wall-clock time is carried as [`Nanos`] and only converted to ticks at
//! the density-estimation boundary.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A wall-clock instant or duration in nanoseconds.
///
/// `Nanos` is deliberately ambiguous between "instant" and "duration":
/// traces carry instants, configuration carries durations, and both live on
/// the same monotone axis starting at the trace epoch.
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::Nanos;
/// let t = Nanos::from_millis(3) + Nanos::from_micros(500);
/// assert_eq!(t.as_nanos(), 3_500_000);
/// assert_eq!(t.as_millis_f64(), 3.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Nanos(u64);

impl Nanos {
    /// The zero instant (the trace epoch).
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a value from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a value from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a value from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a value from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a value from whole minutes.
    pub const fn from_minutes(m: u64) -> Self {
        Nanos(m * 60 * 1_000_000_000)
    }

    /// Creates a value from a fractional number of milliseconds.
    ///
    /// Negative inputs saturate to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        Nanos((ms.max(0.0) * 1_000_000.0).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The value in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The value in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The value in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Subtraction that saturates at zero instead of panicking.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction, `None` if `rhs > self`.
    pub fn checked_sub(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_sub(rhs.0).map(Nanos)
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 && self.0.is_multiple_of(1_000_000) {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// The time quantum `τ`: the resolution of all series in the analysis.
///
/// The paper recommends setting `τ` to the shortest service delay of
/// interest (1 ms for the RUBiS experiments, 1 s for the Delta Revenue
/// Pipeline traces).
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::{Quanta, Nanos};
/// let q = Quanta::from_millis(1);
/// assert_eq!(q.tick_of(Nanos::from_micros(2_400)).index(), 2);
/// assert_eq!(q.ticks_in(Nanos::from_secs(3)), 3000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Quanta(Nanos);

impl Quanta {
    /// Creates a quantum of `ns` nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is zero.
    pub fn from_nanos(ns: u64) -> Self {
        assert!(ns > 0, "time quantum must be positive");
        Quanta(Nanos::from_nanos(ns))
    }

    /// Creates a quantum of `us` microseconds.
    pub fn from_micros(us: u64) -> Self {
        Self::from_nanos(us * 1_000)
    }

    /// Creates a quantum of `ms` milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Self::from_nanos(ms * 1_000_000)
    }

    /// Creates a quantum of `s` seconds.
    pub fn from_secs(s: u64) -> Self {
        Self::from_nanos(s * 1_000_000_000)
    }

    /// The duration of one tick.
    pub fn duration(self) -> Nanos {
        self.0
    }

    /// The tick containing the instant `t` (floor division).
    pub fn tick_of(self, t: Nanos) -> Tick {
        Tick(t.as_nanos() / self.0.as_nanos())
    }

    /// The number of whole ticks in the duration `d` (floor division).
    pub fn ticks_in(self, d: Nanos) -> u64 {
        d.as_nanos() / self.0.as_nanos()
    }

    /// The instant at which tick `t` begins.
    pub fn instant_of(self, t: Tick) -> Nanos {
        Nanos::from_nanos(t.0 * self.0.as_nanos())
    }

    /// Converts a tick-count (e.g. a correlation lag) to wall-clock time.
    pub fn ticks_to_nanos(self, ticks: u64) -> Nanos {
        Nanos::from_nanos(ticks * self.0.as_nanos())
    }
}

/// An integer index on the discretized time axis, in units of `τ`.
///
/// # Example
///
/// ```
/// use e2eprof_timeseries::Tick;
/// let t = Tick::new(10) + 5;
/// assert_eq!(t.index(), 15);
/// assert_eq!(t - Tick::new(10), 5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Tick(u64);

impl Tick {
    /// The zero tick.
    pub const ZERO: Tick = Tick(0);

    /// Creates a tick from a raw index.
    pub const fn new(index: u64) -> Self {
        Tick(index)
    }

    /// The raw index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Subtraction that saturates at tick zero.
    pub fn saturating_sub(self, ticks: u64) -> Tick {
        Tick(self.0.saturating_sub(ticks))
    }

    /// Checked distance to a (possibly earlier) tick.
    pub fn checked_sub(self, rhs: Tick) -> Option<u64> {
        self.0.checked_sub(rhs.0)
    }
}

impl From<u64> for Tick {
    fn from(index: u64) -> Self {
        Tick(index)
    }
}

impl Add<u64> for Tick {
    type Output = Tick;
    fn add(self, rhs: u64) -> Tick {
        Tick(self.0 + rhs)
    }
}

impl Sub for Tick {
    type Output = u64;
    /// Distance in ticks.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`.
    fn sub(self, rhs: Tick) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("tick subtraction underflow")
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_constructors_agree() {
        assert_eq!(Nanos::from_micros(1), Nanos::from_nanos(1_000));
        assert_eq!(Nanos::from_millis(1), Nanos::from_micros(1_000));
        assert_eq!(Nanos::from_secs(1), Nanos::from_millis(1_000));
        assert_eq!(Nanos::from_minutes(1), Nanos::from_secs(60));
    }

    #[test]
    fn nanos_arithmetic() {
        let a = Nanos::from_millis(5);
        let b = Nanos::from_millis(3);
        assert_eq!((a - b).as_millis(), 2);
        assert_eq!((a + b).as_millis(), 8);
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.checked_sub(b), Some(Nanos::from_millis(2)));
        assert_eq!(b.checked_sub(a), None);
    }

    #[test]
    fn nanos_from_millis_f64_rounds_and_saturates() {
        assert_eq!(Nanos::from_millis_f64(1.5).as_nanos(), 1_500_000);
        assert_eq!(Nanos::from_millis_f64(-3.0), Nanos::ZERO);
    }

    #[test]
    fn nanos_display_picks_unit() {
        assert_eq!(format!("{}", Nanos::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Nanos::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(2)), "2.000s");
    }

    #[test]
    fn quanta_tick_floor_semantics() {
        let q = Quanta::from_millis(1);
        assert_eq!(q.tick_of(Nanos::from_nanos(0)), Tick::new(0));
        assert_eq!(q.tick_of(Nanos::from_nanos(999_999)), Tick::new(0));
        assert_eq!(q.tick_of(Nanos::from_nanos(1_000_000)), Tick::new(1));
        assert_eq!(q.instant_of(Tick::new(7)), Nanos::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "time quantum must be positive")]
    fn zero_quanta_rejected() {
        let _ = Quanta::from_nanos(0);
    }

    #[test]
    fn tick_arithmetic() {
        let t = Tick::new(100);
        assert_eq!(t + 5, Tick::new(105));
        assert_eq!(t - Tick::new(40), 60);
        assert_eq!(t.saturating_sub(200), Tick::ZERO);
        assert_eq!(t.checked_sub(Tick::new(101)), None);
        assert_eq!(t.checked_sub(Tick::new(99)), Some(1));
    }

    #[test]
    #[should_panic(expected = "tick subtraction underflow")]
    fn tick_sub_underflow_panics() {
        let _ = Tick::new(1) - Tick::new(2);
    }
}
