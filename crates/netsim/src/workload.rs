//! Workload generators: the arrival processes driving client nodes.
//!
//! The RUBiS experiments use `httperf`-style open-loop sessions with
//! Poisson arrivals; the Delta Revenue Pipeline adds diurnal rate
//! variation, pronounced ON/OFF burstiness, and a nightly batch surge (the
//! 4 AM paper-ticket submission that drives queue lengths to 4000).

use e2eprof_timeseries::Nanos;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An arrival process description (stateless configuration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Workload {
    /// Poisson arrivals at a constant rate (exponential inter-arrivals).
    Poisson {
        /// Mean arrivals per second.
        rate_per_sec: f64,
    },
    /// ON/OFF bursty traffic: Poisson at `rate_per_sec` during ON phases,
    /// silent during OFF phases.
    OnOff {
        /// Rate during the ON phase.
        rate_per_sec: f64,
        /// Mean ON-phase duration (exponential).
        on: Nanos,
        /// Mean OFF-phase duration (exponential).
        off: Nanos,
    },
    /// Explicit arrival instants (must be sorted).
    Trace(
        /// Sorted arrival timestamps.
        Vec<Nanos>,
    ),
    /// Poisson base traffic plus scheduled batch surges: at each `(time,
    /// count)` entry, `count` extra requests arrive back-to-back.
    PoissonWithBatches {
        /// Base arrival rate per second.
        rate_per_sec: f64,
        /// Scheduled `(instant, burst size)` entries, sorted by instant.
        batches: Vec<(Nanos, u32)>,
    },
    /// Diurnal traffic: a non-homogeneous Poisson process whose rate
    /// swings sinusoidally between `trough_fraction · peak_rate` and
    /// `peak_rate` over each `period` (sampled by thinning). Models the
    /// daily cycle of enterprise pipelines like Delta's.
    Diurnal {
        /// Rate at the daily peak (arrivals/second).
        peak_rate: f64,
        /// Trough rate as a fraction of the peak, in `[0, 1]`.
        trough_fraction: f64,
        /// Length of one full cycle.
        period: Nanos,
    },
}

impl Workload {
    /// Poisson arrivals at `rate_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive and finite.
    pub fn poisson(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive"
        );
        Workload::Poisson { rate_per_sec }
    }

    /// ON/OFF bursty arrivals.
    pub fn on_off(rate_per_sec: f64, on: Nanos, off: Nanos) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive"
        );
        Workload::OnOff {
            rate_per_sec,
            on,
            off,
        }
    }

    /// Replays explicit arrival instants.
    ///
    /// # Panics
    ///
    /// Panics if the instants are not sorted.
    pub fn trace(mut arrivals: Vec<Nanos>) -> Self {
        assert!(
            arrivals.windows(2).all(|w| w[0] <= w[1]),
            "trace arrivals must be sorted"
        );
        arrivals.shrink_to_fit();
        Workload::Trace(arrivals)
    }

    /// Diurnal arrivals: sinusoidal rate between `trough_fraction ·
    /// peak_rate` (at phase 0) and `peak_rate` (half a period in).
    ///
    /// # Panics
    ///
    /// Panics if the peak rate is not positive, `trough_fraction` is
    /// outside `[0, 1]`, or the period is zero.
    pub fn diurnal(peak_rate: f64, trough_fraction: f64, period: Nanos) -> Self {
        assert!(
            peak_rate.is_finite() && peak_rate > 0.0,
            "arrival rate must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&trough_fraction),
            "trough fraction must be in [0, 1]"
        );
        assert!(period > Nanos::ZERO, "period must be positive");
        Workload::Diurnal {
            peak_rate,
            trough_fraction,
            period,
        }
    }

    /// Poisson base rate plus scheduled batches.
    pub fn poisson_with_batches(rate_per_sec: f64, mut batches: Vec<(Nanos, u32)>) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive"
        );
        batches.sort_by_key(|&(t, _)| t);
        Workload::PoissonWithBatches {
            rate_per_sec,
            batches,
        }
    }
}

/// Exponential inter-arrival draw for rate `rate_per_sec`.
fn exp_gap<R: Rng + ?Sized>(rate_per_sec: f64, rng: &mut R) -> Nanos {
    let u: f64 = 1.0 - rng.gen::<f64>();
    Nanos::from_nanos((-u.ln() / rate_per_sec * 1e9).round() as u64)
}

/// Stateful iterator over a workload's arrival instants.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    workload: Workload,
    /// Next trace / batch cursor.
    cursor: usize,
    /// Remaining arrivals in the current batch.
    batch_left: u32,
    /// End of the current ON phase (OnOff only).
    on_until: Nanos,
}

impl ArrivalGen {
    /// Creates a generator for the workload.
    pub fn new(workload: Workload) -> Self {
        ArrivalGen {
            workload,
            cursor: 0,
            batch_left: 0,
            on_until: Nanos::ZERO,
        }
    }

    /// The instant of the arrival following time `now`, or `None` if the
    /// workload is exhausted (only possible for traces).
    pub fn next_arrival<R: Rng + ?Sized>(&mut self, now: Nanos, rng: &mut R) -> Option<Nanos> {
        match &self.workload {
            Workload::Poisson { rate_per_sec } => Some(now + exp_gap(*rate_per_sec, rng)),
            Workload::OnOff {
                rate_per_sec,
                on,
                off,
            } => {
                let mut t = now;
                loop {
                    if t < self.on_until {
                        let candidate = t + exp_gap(*rate_per_sec, rng);
                        if candidate <= self.on_until {
                            return Some(candidate);
                        }
                        // Arrival fell past the ON phase: enter OFF.
                        t = self.on_until;
                    }
                    // Begin the next OFF→ON cycle.
                    let off_len = DistDraw::exponential(*off, rng);
                    let on_len = DistDraw::exponential(*on, rng);
                    t += off_len;
                    self.on_until = t + on_len;
                }
            }
            Workload::Trace(arrivals) => {
                while self.cursor < arrivals.len() && arrivals[self.cursor] < now {
                    self.cursor += 1;
                }
                let t = arrivals.get(self.cursor).copied();
                if t.is_some() {
                    self.cursor += 1;
                }
                t
            }
            Workload::PoissonWithBatches {
                rate_per_sec,
                batches,
            } => {
                // Drain an in-progress batch first (back-to-back arrivals).
                if self.batch_left > 0 {
                    self.batch_left -= 1;
                    return Some(now);
                }
                let base = now + exp_gap(*rate_per_sec, rng);
                if let Some(&(bt, count)) = batches.get(self.cursor) {
                    if bt <= base && bt >= now {
                        self.cursor += 1;
                        self.batch_left = count.saturating_sub(1);
                        return Some(bt);
                    }
                }
                Some(base)
            }
            Workload::Diurnal {
                peak_rate,
                trough_fraction,
                period,
            } => {
                // Thinning: candidates at the peak rate, accepted with
                // probability rate(t)/peak.
                let mut t = now;
                loop {
                    t += exp_gap(*peak_rate, rng);
                    let phase =
                        (t.as_nanos() % period.as_nanos()) as f64 / period.as_nanos() as f64;
                    let swing = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * phase).cos());
                    let fraction = trough_fraction + (1.0 - trough_fraction) * swing;
                    if rng.gen::<f64>() < fraction {
                        return Some(t);
                    }
                }
            }
        }
    }
}

/// Internal helper for exponential draws from a mean duration.
struct DistDraw;

impl DistDraw {
    fn exponential<R: Rng + ?Sized>(mean: Nanos, rng: &mut R) -> Nanos {
        let u: f64 = 1.0 - rng.gen::<f64>();
        Nanos::from_nanos((-(mean.as_nanos() as f64) * u.ln()).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn collect(workload: Workload, horizon: Nanos, seed: u64) -> Vec<Nanos> {
        let mut gen = ArrivalGen::new(workload);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        let mut now = Nanos::ZERO;
        while let Some(t) = gen.next_arrival(now, &mut rng) {
            if t > horizon {
                break;
            }
            out.push(t);
            now = t;
        }
        out
    }

    #[test]
    fn poisson_rate_converges() {
        let arrivals = collect(Workload::poisson(100.0), Nanos::from_secs(100), 1);
        let rate = arrivals.len() as f64 / 100.0;
        assert!((rate - 100.0).abs() < 5.0, "rate {rate}");
    }

    #[test]
    fn poisson_interarrivals_are_memoryless() {
        // Coefficient of variation of exponential inter-arrivals is 1.
        let arrivals = collect(Workload::poisson(200.0), Nanos::from_secs(50), 2);
        let gaps: Vec<f64> = arrivals
            .windows(2)
            .map(|w| (w[1] - w[0]).as_nanos() as f64)
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.1, "cv {cv}");
    }

    #[test]
    fn trace_replays_exactly() {
        let ts = vec![
            Nanos::from_millis(3),
            Nanos::from_millis(8),
            Nanos::from_millis(8),
            Nanos::from_millis(20),
        ];
        let arrivals = collect(Workload::trace(ts.clone()), Nanos::from_secs(1), 3);
        assert_eq!(arrivals, ts);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_trace_rejected() {
        let _ = Workload::trace(vec![Nanos::from_millis(5), Nanos::from_millis(2)]);
    }

    #[test]
    fn batches_arrive_back_to_back() {
        let w = Workload::poisson_with_batches(1.0, vec![(Nanos::from_secs(5), 50)]);
        let arrivals = collect(w, Nanos::from_secs(10), 4);
        let at_batch = arrivals
            .iter()
            .filter(|&&t| t == Nanos::from_secs(5))
            .count();
        assert_eq!(at_batch, 50);
    }

    #[test]
    fn on_off_has_quiet_zones() {
        let w = Workload::on_off(1000.0, Nanos::from_millis(50), Nanos::from_millis(200));
        let arrivals = collect(w, Nanos::from_secs(20), 5);
        assert!(arrivals.len() > 100);
        // A Poisson stream at this average rate would rarely show 150 ms
        // gaps; ON/OFF must show many.
        let long_gaps = arrivals
            .windows(2)
            .filter(|w| w[1] - w[0] > Nanos::from_millis(150))
            .count();
        assert!(long_gaps > 10, "long gaps: {long_gaps}");
    }

    #[test]
    fn diurnal_rate_swings_between_trough_and_peak() {
        let period = Nanos::from_secs(100);
        let w = Workload::diurnal(200.0, 0.1, period);
        let arrivals = collect(w, Nanos::from_secs(400), 6);
        // Count arrivals near troughs (phase ~0) vs peaks (phase ~0.5).
        let phase_of = |t: Nanos| (t.as_nanos() % period.as_nanos()) as f64 / 1e11;
        let near_trough = arrivals
            .iter()
            .filter(|&&t| {
                let p = phase_of(t);
                !(0.15..0.85).contains(&p)
            })
            .count();
        let near_peak = arrivals
            .iter()
            .filter(|&&t| {
                let p = phase_of(t);
                (0.35..0.65).contains(&p)
            })
            .count();
        assert!(
            near_peak as f64 > 2.0 * near_trough as f64,
            "peak {near_peak} vs trough {near_trough}"
        );
        // Average rate is between trough and peak.
        let avg = arrivals.len() as f64 / 400.0;
        assert!((20.0..200.0).contains(&avg), "avg {avg}");
    }

    #[test]
    #[should_panic(expected = "trough fraction")]
    fn diurnal_rejects_bad_trough() {
        let _ = Workload::diurnal(10.0, 1.5, Nanos::from_secs(10));
    }

    #[test]
    fn generators_are_deterministic() {
        let a = collect(Workload::poisson(100.0), Nanos::from_secs(5), 9);
        let b = collect(Workload::poisson(100.0), Nanos::from_secs(5), 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = Workload::poisson(0.0);
    }
}
