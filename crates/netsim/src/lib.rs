//! A deterministic discrete-event simulator of multi-tier distributed
//! systems — E2EProf's evaluation substrate.
//!
//! The paper evaluates pathmap against live deployments (RUBiS on six
//! servers, Delta Air Lines' Revenue Pipeline) traced by a `netfilter`
//! kernel module. This crate provides the equivalent in-process substrate:
//! a simulated topology of client and service nodes connected by links,
//! with FIFO queueing, configurable service-time distributions, routing
//! policies, workload generators, per-node clocks (with injectable skew),
//! passive per-node packet capture, and a ground-truth recorder for
//! validating inferred delays.
//!
//! The contract with the analysis layers is deliberately thin: pathmap only
//! ever sees what the paper's tracer saw — `(timestamp, source,
//! destination)` packet records collected *at* each service node, stamped
//! with that node's local clock. Everything else (ground truth, queue
//! lengths) exists purely for validation.
//!
//! # Example
//!
//! ```
//! use e2eprof_netsim::prelude::*;
//!
//! let mut t = TopologyBuilder::new();
//! let class = t.service_class("browse");
//! let web = t.service("web", ServiceConfig::new(DelayDist::constant_millis(2)));
//! let db = t.service("db", ServiceConfig::new(DelayDist::constant_millis(5)));
//! let client = t.client("client", class, web, Workload::poisson(50.0));
//! t.connect(client, web, DelayDist::constant_millis(1));
//! t.connect(web, db, DelayDist::constant_millis(1));
//! t.route(web, class, Route::fixed(db));
//! t.route(db, class, Route::terminal());
//!
//! let mut sim = Simulation::new(t.build()?, 42);
//! sim.run_until(Nanos::from_secs(10));
//! let stats = sim.truth().class_latency(class);
//! assert!(stats.count() > 300);
//! // ~2 + 5 + small response hops + 4 link crossings of 1ms.
//! assert!(stats.mean() > 10e6 && stats.mean() < 16e6);
//! # Ok::<(), e2eprof_netsim::topology::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod clock;
pub mod dist;
pub mod events;
pub mod ids;
pub mod message;
pub mod perturb;
pub mod routing;
pub mod sim;
pub mod topology;
pub mod truth;
pub mod workload;

/// Convenient glob-import of the simulator's main types.
pub mod prelude {
    pub use crate::capture::{CaptureStore, TraceKey};
    pub use crate::clock::NodeClock;
    pub use crate::dist::DelayDist;
    pub use crate::ids::{ClassId, NodeId, RequestId};
    pub use crate::perturb::DelaySchedule;
    pub use crate::routing::Route;
    pub use crate::sim::Simulation;
    pub use crate::topology::{ServiceConfig, Topology, TopologyBuilder};
    pub use crate::truth::TruthRecorder;
    pub use crate::workload::Workload;
    pub use e2eprof_timeseries::Nanos;
}

pub use capture::{CaptureStore, TraceKey};
pub use dist::DelayDist;
pub use ids::{ClassId, NodeId, RequestId};
pub use routing::Route;
pub use sim::Simulation;
pub use topology::{ServiceConfig, Topology, TopologyBuilder};
pub use workload::Workload;
