//! Identifier newtypes for simulation entities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a node (client or service) in the topology.
///
/// Node ids are dense indices assigned by the [`TopologyBuilder`] in
/// creation order; the topology maps them back to human-readable labels.
///
/// [`TopologyBuilder`]: crate::topology::TopologyBuilder
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a service class (the unit of pathmap analysis).
///
/// Requests issued by one client node all belong to one class; a physical
/// client issuing several classes is modelled as several client nodes,
/// exactly as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClassId(u16);

impl ClassId {
    /// Creates a class id from a raw index.
    pub const fn new(index: u16) -> Self {
        ClassId(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifies one end-to-end request.
///
/// Only the simulator's ground-truth recorder sees request ids — pathmap,
/// by design, never does (it is a black-box technique).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RequestId(u64);

impl RequestId {
    /// Creates a request id from a raw counter value.
    pub const fn new(value: u64) -> Self {
        RequestId(value)
    }

    /// The raw counter value.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(ClassId::new(0) < ClassId::new(1));
        assert!(RequestId::new(10) < RequestId::new(11));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert_eq!(ClassId::new(1).to_string(), "c1");
        assert_eq!(RequestId::new(7).to_string(), "r7");
    }

    #[test]
    fn round_trip_index() {
        assert_eq!(NodeId::new(9).index(), 9);
        assert_eq!(ClassId::new(2).index(), 2);
        assert_eq!(RequestId::new(123).value(), 123);
    }
}
