//! Per-node clocks with injectable skew and drift.
//!
//! Pathmap assumes loosely NTP-synchronized clocks (Section 3.8): small
//! skews shift inferred delays by the skew amount, and the skew itself can
//! be estimated by cross-correlating the two ends of one edge. The
//! simulator therefore stamps each node's capture records with that node's
//! *local* clock — global simulation time transformed by a per-node offset
//! and drift.

use e2eprof_timeseries::Nanos;
use serde::{Deserialize, Serialize};

/// A node's local clock: `local(t) = t + skew + drift_ppm · t / 10⁶`,
/// saturated at zero.
///
/// # Example
///
/// ```
/// use e2eprof_netsim::clock::NodeClock;
/// use e2eprof_timeseries::Nanos;
/// let c = NodeClock::with_skew_millis(5);
/// assert_eq!(c.local(Nanos::from_secs(1)), Nanos::from_millis(1005));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeClock {
    /// Constant offset from global time, in nanoseconds (may be negative).
    skew_ns: i64,
    /// Linear drift in parts per million.
    drift_ppm: f64,
}

impl Default for NodeClock {
    /// A perfectly synchronized clock.
    fn default() -> Self {
        NodeClock {
            skew_ns: 0,
            drift_ppm: 0.0,
        }
    }
}

impl NodeClock {
    /// A perfectly synchronized clock.
    pub fn synchronized() -> Self {
        Self::default()
    }

    /// A clock offset by a constant number of nanoseconds (positive: this
    /// node's clock runs ahead of global time).
    pub fn with_skew_nanos(skew_ns: i64) -> Self {
        NodeClock {
            skew_ns,
            drift_ppm: 0.0,
        }
    }

    /// A clock offset by a constant number of milliseconds.
    pub fn with_skew_millis(skew_ms: i64) -> Self {
        Self::with_skew_nanos(skew_ms * 1_000_000)
    }

    /// Adds linear drift in parts per million.
    pub fn with_drift_ppm(mut self, ppm: f64) -> Self {
        self.drift_ppm = ppm;
        self
    }

    /// The constant skew in nanoseconds.
    pub fn skew_ns(&self) -> i64 {
        self.skew_ns
    }

    /// The drift in parts per million.
    pub fn drift_ppm(&self) -> f64 {
        self.drift_ppm
    }

    /// Transforms global simulation time into this node's local timestamp.
    ///
    /// Saturates at zero (a trace cannot contain negative timestamps).
    pub fn local(&self, global: Nanos) -> Nanos {
        let g = global.as_nanos() as i128;
        let drift = (self.drift_ppm * global.as_nanos() as f64 / 1e6).round() as i128;
        let local = g + self.skew_ns as i128 + drift;
        Nanos::from_nanos(local.max(0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronized_clock_is_identity() {
        let c = NodeClock::synchronized();
        assert_eq!(c.local(Nanos::from_millis(123)), Nanos::from_millis(123));
    }

    #[test]
    fn positive_skew_runs_ahead() {
        let c = NodeClock::with_skew_millis(3);
        assert_eq!(c.local(Nanos::from_millis(10)), Nanos::from_millis(13));
    }

    #[test]
    fn negative_skew_runs_behind_and_saturates() {
        let c = NodeClock::with_skew_millis(-3);
        assert_eq!(c.local(Nanos::from_millis(10)), Nanos::from_millis(7));
        assert_eq!(c.local(Nanos::from_millis(1)), Nanos::ZERO);
    }

    #[test]
    fn drift_accumulates_linearly() {
        // 100 ppm over 10 seconds = 1 ms.
        let c = NodeClock::synchronized().with_drift_ppm(100.0);
        assert_eq!(
            c.local(Nanos::from_secs(10)),
            Nanos::from_nanos(10_001_000_000)
        );
    }

    #[test]
    fn monotone_for_sane_drift() {
        let c = NodeClock::with_skew_millis(-2).with_drift_ppm(-200.0);
        let mut prev = c.local(Nanos::ZERO);
        for ms in (0..10_000).step_by(97) {
            let cur = c.local(Nanos::from_millis(ms));
            assert!(cur >= prev);
            prev = cur;
        }
    }
}
