//! Per-node, per-class routing policies.
//!
//! The RUBiS experiments use two dispatch policies at the front-end web
//! server — *affinity* (fixed server per class) and *round-robin* — and the
//! SLA experiment replaces round-robin with a dynamic policy driven by
//! E2EProf's live path latencies. [`DynamicRouter`] is that extension
//! point: the apps crate implements it on top of the pathmap analyzer.

use crate::ids::{ClassId, NodeId};
use e2eprof_timeseries::Nanos;
use std::fmt;
use std::sync::Arc;

/// A pluggable routing decision source for [`Route::Dynamic`].
pub trait DynamicRouter: fmt::Debug + Send + Sync {
    /// Chooses the next hop for a request of `class` at time `now`.
    fn choose(&self, class: ClassId, now: Nanos) -> NodeId;
}

/// What a node does with a request of a given class after servicing it.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Route {
    /// Do not forward: generate the response here (back-end node).
    Terminal,
    /// Absorb the request without responding — a unidirectional path, as
    /// in the streaming-media pipelines of paper Section 3.1.
    Sink,
    /// Always forward to this node (affinity dispatch).
    Fixed(NodeId),
    /// Rotate through these nodes per arrival (round-robin dispatch).
    RoundRobin(Vec<NodeId>),
    /// Deterministic weighted rotation: each hop receives arrivals in
    /// proportion to its weight (e.g. capacity-aware dispatch).
    Weighted(Vec<(NodeId, u32)>),
    /// Ask a [`DynamicRouter`] (e.g. the E2EProf-driven SLA scheduler).
    Dynamic(Arc<dyn DynamicRouter>),
    /// Fire-and-forget fan-out: one copy of the message to *each* listed
    /// hop, with no responses expected anywhere downstream — the
    /// publish-subscribe dissemination pattern of the paper's future-work
    /// section.
    Multicast(Vec<NodeId>),
}

impl Route {
    /// Terminal route (respond here).
    pub fn terminal() -> Self {
        Route::Terminal
    }

    /// Sink route (absorb without responding).
    pub fn sink() -> Self {
        Route::Sink
    }

    /// Fixed next hop.
    pub fn fixed(next: NodeId) -> Self {
        Route::Fixed(next)
    }

    /// Round-robin over the given next hops.
    ///
    /// # Panics
    ///
    /// Panics if `hops` is empty.
    pub fn round_robin(hops: Vec<NodeId>) -> Self {
        assert!(!hops.is_empty(), "round-robin needs at least one hop");
        Route::RoundRobin(hops)
    }

    /// Weighted rotation over `(hop, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `hops` is empty or all weights are zero.
    pub fn weighted(hops: Vec<(NodeId, u32)>) -> Self {
        assert!(!hops.is_empty(), "weighted routing needs at least one hop");
        assert!(
            hops.iter().any(|&(_, w)| w > 0),
            "weighted routing needs a positive weight"
        );
        Route::Weighted(hops)
    }

    /// Dynamic route consulting `router` per request.
    pub fn dynamic(router: Arc<dyn DynamicRouter>) -> Self {
        Route::Dynamic(router)
    }

    /// Fire-and-forget multicast to every listed hop.
    ///
    /// # Panics
    ///
    /// Panics if `hops` is empty.
    pub fn multicast(hops: Vec<NodeId>) -> Self {
        assert!(!hops.is_empty(), "multicast needs at least one hop");
        Route::Multicast(hops)
    }

    /// Resolves the next hop; `None` means terminal. `counter` is the
    /// node's per-class round-robin state, advanced on use.
    pub fn next_hop(&self, class: ClassId, now: Nanos, counter: &mut usize) -> Option<NodeId> {
        match self {
            Route::Terminal | Route::Sink => None,
            Route::Fixed(n) => Some(*n),
            Route::RoundRobin(hops) => {
                let n = hops[*counter % hops.len()];
                *counter += 1;
                Some(n)
            }
            Route::Weighted(hops) => {
                // Deterministic: the counter indexes into the weight-
                // expanded rotation (stride-interleaved for smoothness).
                let total: u32 = hops.iter().map(|&(_, w)| w).sum();
                let mut slot = (*counter as u32) % total;
                *counter += 1;
                for &(n, w) in hops {
                    if slot < w {
                        return Some(n);
                    }
                    slot -= w;
                }
                unreachable!("slot within total weight");
            }
            Route::Dynamic(router) => Some(router.choose(class, now)),
            // Multicast is handled by `multicast_hops`; it has no single
            // next hop.
            Route::Multicast(_) => None,
        }
    }

    /// The multicast fan-out targets, if this is a multicast route.
    pub fn multicast_hops(&self) -> Option<&[NodeId]> {
        match self {
            Route::Multicast(hops) => Some(hops),
            _ => None,
        }
    }

    /// Whether this route absorbs requests without responding.
    pub fn is_sink(&self) -> bool {
        matches!(self, Route::Sink)
    }

    /// Every node this route can possibly forward to (for validation).
    pub fn candidate_hops(&self) -> Vec<NodeId> {
        match self {
            Route::Terminal | Route::Sink => Vec::new(),
            Route::Fixed(n) => vec![*n],
            Route::RoundRobin(hops) => hops.clone(),
            Route::Weighted(hops) => hops.iter().map(|&(n, _)| n).collect(),
            Route::Multicast(hops) => hops.clone(),
            // Dynamic candidates are unknown statically; the topology
            // validates dynamic hops at runtime instead.
            Route::Dynamic(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn terminal_yields_none() {
        let mut c = 0;
        assert_eq!(
            Route::terminal().next_hop(ClassId::new(0), Nanos::ZERO, &mut c),
            None
        );
    }

    #[test]
    fn fixed_always_same() {
        let r = Route::fixed(n(4));
        let mut c = 0;
        for _ in 0..5 {
            assert_eq!(r.next_hop(ClassId::new(0), Nanos::ZERO, &mut c), Some(n(4)));
        }
    }

    #[test]
    fn round_robin_rotates() {
        let r = Route::round_robin(vec![n(1), n(2)]);
        let mut c = 0;
        let picks: Vec<NodeId> = (0..4)
            .map(|_| r.next_hop(ClassId::new(0), Nanos::ZERO, &mut c).unwrap())
            .collect();
        assert_eq!(picks, vec![n(1), n(2), n(1), n(2)]);
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn empty_round_robin_rejected() {
        let _ = Route::round_robin(vec![]);
    }

    #[derive(Debug)]
    struct AlwaysTwo;
    impl DynamicRouter for AlwaysTwo {
        fn choose(&self, _: ClassId, _: Nanos) -> NodeId {
            n(2)
        }
    }

    #[test]
    fn dynamic_consults_router() {
        let r = Route::dynamic(Arc::new(AlwaysTwo));
        let mut c = 0;
        assert_eq!(r.next_hop(ClassId::new(1), Nanos::ZERO, &mut c), Some(n(2)));
    }

    #[test]
    fn weighted_respects_proportions() {
        let r = Route::weighted(vec![(n(1), 3), (n(2), 1)]);
        let mut c = 0;
        let picks: Vec<NodeId> = (0..8)
            .map(|_| r.next_hop(ClassId::new(0), Nanos::ZERO, &mut c).unwrap())
            .collect();
        assert_eq!(picks.iter().filter(|&&p| p == n(1)).count(), 6);
        assert_eq!(picks.iter().filter(|&&p| p == n(2)).count(), 2);
    }

    #[test]
    fn weighted_zero_weight_hop_never_picked() {
        let r = Route::weighted(vec![(n(1), 0), (n(2), 2)]);
        let mut c = 0;
        for _ in 0..6 {
            assert_eq!(r.next_hop(ClassId::new(0), Nanos::ZERO, &mut c), Some(n(2)));
        }
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn weighted_all_zero_rejected() {
        let _ = Route::weighted(vec![(n(1), 0)]);
    }

    #[test]
    fn multicast_exposes_fanout() {
        let r = Route::multicast(vec![n(1), n(2), n(3)]);
        assert_eq!(r.multicast_hops(), Some(&[n(1), n(2), n(3)][..]));
        let mut c = 0;
        assert_eq!(r.next_hop(ClassId::new(0), Nanos::ZERO, &mut c), None);
        assert_eq!(r.candidate_hops().len(), 3);
        assert!(Route::terminal().multicast_hops().is_none());
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn empty_multicast_rejected() {
        let _ = Route::multicast(vec![]);
    }

    #[test]
    fn candidate_hops_reported() {
        assert!(Route::terminal().candidate_hops().is_empty());
        assert_eq!(Route::fixed(n(3)).candidate_hops(), vec![n(3)]);
        assert_eq!(
            Route::round_robin(vec![n(1), n(2)]).candidate_hops(),
            vec![n(1), n(2)]
        );
    }
}
