//! Messages exchanged between nodes.

use crate::ids::{ClassId, NodeId, RequestId};
use serde::{Deserialize, Serialize};

/// Whether a message travels down the request path or back up it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MsgKind {
    /// A client request (or a downstream query derived from one).
    Request,
    /// A response travelling the request's path in reverse.
    Response,
}

/// One logical message in flight.
///
/// The `path` records every node the request has been *processed* at (the
/// originating client at index 0), so responses can retrace it in reverse —
/// the paper's bidirectional-path assumption. `back_index` is meaningful
/// only for responses: the position in `path` of the node that (last)
/// forwarded this response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// End-to-end request this message belongs to.
    pub req: RequestId,
    /// Service class of the originating client.
    pub class: ClassId,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Request or response direction.
    pub kind: MsgKind,
    /// Nodes the request has been processed at, client first.
    pub path: Vec<NodeId>,
    /// For responses: index into `path` of the forwarding node.
    pub back_index: usize,
}

impl Message {
    /// Creates the initial request message from a client to the front end.
    pub fn initial_request(req: RequestId, class: ClassId, client: NodeId, front: NodeId) -> Self {
        Message {
            req,
            class,
            src: client,
            dst: front,
            kind: MsgKind::Request,
            path: vec![client],
            back_index: 0,
        }
    }

    /// Creates the downstream request sent when `node` forwards this
    /// request to `next` (appends `node` to the path).
    ///
    /// # Panics
    ///
    /// Panics if called on a response.
    pub fn forwarded(&self, node: NodeId, next: NodeId) -> Self {
        assert_eq!(self.kind, MsgKind::Request, "cannot forward a response");
        let mut path = self.path.clone();
        path.push(node);
        Message {
            req: self.req,
            class: self.class,
            src: node,
            dst: next,
            kind: MsgKind::Request,
            path,
            back_index: 0,
        }
    }

    /// Creates the first response at the terminal node `node`.
    ///
    /// # Panics
    ///
    /// Panics if called on a response or if the path is empty.
    pub fn into_response(&self, node: NodeId) -> Self {
        assert_eq!(self.kind, MsgKind::Request, "already a response");
        let mut path = self.path.clone();
        path.push(node);
        let back_index = path.len() - 1;
        let dst = path[back_index - 1];
        Message {
            req: self.req,
            class: self.class,
            src: node,
            dst,
            kind: MsgKind::Response,
            path,
            back_index,
        }
    }

    /// Creates the response hop sent when intermediate node `node` (at
    /// `path[back_index - 1]`) passes this response further upstream.
    ///
    /// # Panics
    ///
    /// Panics if called on a request or at the end of the path.
    pub fn response_hop(&self) -> Self {
        assert_eq!(self.kind, MsgKind::Response, "not a response");
        let back_index = self.back_index - 1;
        assert!(back_index > 0, "response already at the client");
        Message {
            req: self.req,
            class: self.class,
            src: self.path[back_index],
            dst: self.path[back_index - 1],
            kind: MsgKind::Response,
            path: self.path.clone(),
            back_index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn request_response_round_trip() {
        let m = Message::initial_request(RequestId::new(1), ClassId::new(0), n(0), n(1));
        assert_eq!(m.path, vec![n(0)]);
        let m = m.forwarded(n(1), n(2));
        assert_eq!(m.path, vec![n(0), n(1)]);
        assert_eq!((m.src, m.dst), (n(1), n(2)));
        let m = m.forwarded(n(2), n(3));
        // Terminal at node 3.
        let r = m.into_response(n(3));
        assert_eq!(r.kind, MsgKind::Response);
        assert_eq!(r.path, vec![n(0), n(1), n(2), n(3)]);
        assert_eq!((r.src, r.dst), (n(3), n(2)));
        let r = r.response_hop();
        assert_eq!((r.src, r.dst), (n(2), n(1)));
        let r = r.response_hop();
        assert_eq!((r.src, r.dst), (n(1), n(0)));
        assert_eq!(r.back_index, 1);
    }

    #[test]
    #[should_panic(expected = "already at the client")]
    fn response_cannot_pass_the_client() {
        let m = Message::initial_request(RequestId::new(1), ClassId::new(0), n(0), n(1));
        let r = m.into_response(n(1));
        let _ = r.response_hop(); // back at client already
    }

    #[test]
    #[should_panic(expected = "cannot forward a response")]
    fn forwarding_response_panics() {
        let m = Message::initial_request(RequestId::new(1), ClassId::new(0), n(0), n(1));
        let r = m.into_response(n(1));
        let _ = r.forwarded(n(1), n(2));
    }
}
