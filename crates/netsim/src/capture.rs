//! Passive per-node packet capture — the simulated `tracer` module.
//!
//! Every message crossing a link is recorded at both the sending and the
//! receiving *service* node (client machines are beyond the enterprise's
//! reach and are never traced, exactly as in the paper). A record is just a
//! timestamp in the observing node's local clock; the store groups records
//! by `(observer, src, dst)` so the analysis layer can ask for, e.g., "the
//! signal of messages `WS → TS1` as seen at `TS1`".

use crate::ids::NodeId;
use e2eprof_timeseries::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Identifies one captured signal: messages `src → dst` observed at
/// `observer` (which is `src` or `dst`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TraceKey {
    /// The node whose tracer recorded the packets.
    pub observer: NodeId,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
}

impl TraceKey {
    /// The signal of `src → dst` as observed at the receiver.
    pub fn at_receiver(src: NodeId, dst: NodeId) -> Self {
        TraceKey {
            observer: dst,
            src,
            dst,
        }
    }

    /// The signal of `src → dst` as observed at the sender.
    pub fn at_sender(src: NodeId, dst: NodeId) -> Self {
        TraceKey {
            observer: src,
            src,
            dst,
        }
    }
}

/// All captured packet timestamps of a simulation run.
///
/// Timestamps within one key are non-decreasing (events are processed in
/// global time order and node clocks are monotone transforms of it).
#[derive(Debug, Clone, Default)]
pub struct CaptureStore {
    traces: HashMap<TraceKey, Vec<Nanos>>,
    edges: BTreeSet<(NodeId, NodeId)>,
}

impl CaptureStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `packets` packets of a `src → dst` message observed at
    /// `observer` with local timestamp `local_ts`.
    pub fn record(
        &mut self,
        observer: NodeId,
        src: NodeId,
        dst: NodeId,
        local_ts: Nanos,
        packets: u32,
    ) {
        let key = TraceKey { observer, src, dst };
        let v = self.traces.entry(key).or_default();
        for _ in 0..packets {
            v.push(local_ts);
        }
        self.edges.insert((src, dst));
    }

    /// All directed edges that carried at least one packet, in stable
    /// order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.edges.iter().copied()
    }

    /// The directed edges leaving `node` that carried traffic.
    pub fn edges_from(&self, node: NodeId) -> Vec<(NodeId, NodeId)> {
        self.edges
            .range((node, NodeId::new(0))..)
            .take_while(|&&(s, _)| s == node)
            .copied()
            .collect()
    }

    /// The timestamps recorded under `key` (empty if none).
    pub fn timestamps(&self, key: TraceKey) -> &[Nanos] {
        self.traces.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The records under `key` starting at index `from` — the incremental
    /// access tracer agents use while the simulation advances.
    pub fn timestamps_since(&self, key: TraceKey, from: usize) -> &[Nanos] {
        let all = self.timestamps(key);
        &all[from.min(all.len())..]
    }

    /// The `src → dst` signal preferring the receiver-side observation and
    /// falling back to the sender side (edges into untraced client nodes
    /// only exist at the sender).
    pub fn edge_signal(&self, src: NodeId, dst: NodeId) -> &[Nanos] {
        let recv = self.timestamps(TraceKey::at_receiver(src, dst));
        if recv.is_empty() {
            self.timestamps(TraceKey::at_sender(src, dst))
        } else {
            recv
        }
    }

    /// Total number of packet records across all keys.
    pub fn total_packets(&self) -> usize {
        self.traces.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn records_grouped_by_key() {
        let mut c = CaptureStore::new();
        c.record(n(1), n(0), n(1), Nanos::from_millis(5), 1);
        c.record(n(0), n(0), n(1), Nanos::from_millis(4), 1);
        c.record(n(1), n(0), n(1), Nanos::from_millis(9), 2);
        assert_eq!(c.timestamps(TraceKey::at_receiver(n(0), n(1))).len(), 3);
        assert_eq!(c.timestamps(TraceKey::at_sender(n(0), n(1))).len(), 1);
        assert_eq!(c.total_packets(), 4);
    }

    #[test]
    fn edges_enumerated_once() {
        let mut c = CaptureStore::new();
        c.record(n(1), n(0), n(1), Nanos::ZERO, 1);
        c.record(n(1), n(0), n(1), Nanos::ZERO, 1);
        c.record(n(2), n(1), n(2), Nanos::ZERO, 1);
        let edges: Vec<_> = c.edges().collect();
        assert_eq!(edges, vec![(n(0), n(1)), (n(1), n(2))]);
        assert_eq!(c.edges_from(n(1)), vec![(n(1), n(2))]);
        assert!(c.edges_from(n(5)).is_empty());
    }

    #[test]
    fn incremental_access() {
        let mut c = CaptureStore::new();
        let key = TraceKey::at_receiver(n(0), n(1));
        c.record(n(1), n(0), n(1), Nanos::from_millis(1), 1);
        c.record(n(1), n(0), n(1), Nanos::from_millis(2), 1);
        assert_eq!(c.timestamps_since(key, 1).len(), 1);
        assert_eq!(c.timestamps_since(key, 2).len(), 0);
        assert_eq!(c.timestamps_since(key, 99).len(), 0);
    }

    #[test]
    fn edge_signal_prefers_receiver() {
        let mut c = CaptureStore::new();
        c.record(n(0), n(0), n(1), Nanos::from_millis(1), 1);
        assert_eq!(c.edge_signal(n(0), n(1)).len(), 1); // sender fallback
        c.record(n(1), n(0), n(1), Nanos::from_millis(2), 1);
        c.record(n(1), n(0), n(1), Nanos::from_millis(3), 1);
        assert_eq!(c.edge_signal(n(0), n(1)).len(), 2); // receiver preferred
    }
}
