//! The discrete-event simulation engine.
//!
//! Nodes are FIFO stations with one or more parallel servers (M/G/k —
//! multi-threaded middleware processes requests concurrently). A request
//! visits service nodes
//! along its class's route, is (optionally) fanned out into several
//! downstream queries, and its response retraces the path in reverse —
//! exactly the bidirectional request-response conduits of multi-tier web
//! services that the paper assumes. Every link crossing is recorded by the
//! passive capture taps at the sending and receiving service nodes.

use crate::capture::CaptureStore;
use crate::events::{Event, EventQueue};
use crate::ids::{ClassId, NodeId, RequestId};
use crate::message::{Message, MsgKind};
use crate::topology::{NodeKind, Topology};
use crate::truth::TruthRecorder;
use crate::workload::ArrivalGen;
use e2eprof_timeseries::Nanos;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};

/// Join bookkeeping at a node that forwarded (copies of) a request
/// downstream and owes responses upstream.
#[derive(Debug, Default, Clone, Copy)]
struct Join {
    /// Downstream responses still outstanding.
    remaining: u32,
    /// Upstream responses to send once `remaining` reaches zero.
    owed: u32,
}

/// Per-node runtime state.
#[derive(Debug, Default)]
struct NodeState {
    queue: VecDeque<Message>,
    /// Number of busy parallel servers.
    busy: u32,
    rr_counters: HashMap<ClassId, usize>,
    joins: HashMap<RequestId, Join>,
    /// High-water mark of the work queue (the Delta analysis reports
    /// queue lengths up to 4000).
    max_queue: usize,
    /// Arrival generator (client nodes only).
    arrivals: Option<ArrivalGen>,
}

/// A running simulation.
///
/// Construct with a validated [`Topology`] and a seed; advance with
/// [`run_until`](Simulation::run_until) (repeatedly, if external logic —
/// like the E2EProf-driven scheduler — needs to observe state between
/// steps). All behaviour is deterministic in `(topology, seed)`.
#[derive(Debug)]
pub struct Simulation {
    topo: Topology,
    rng: StdRng,
    queue: EventQueue,
    now: Nanos,
    nodes: Vec<NodeState>,
    captures: CaptureStore,
    truth: TruthRecorder,
    next_req: u64,
}

impl Simulation {
    /// Creates a simulation over `topo`, seeding every stochastic choice
    /// from `seed`.
    pub fn new(topo: Topology, seed: u64) -> Self {
        let mut nodes: Vec<NodeState> = (0..topo.num_nodes())
            .map(|_| NodeState::default())
            .collect();
        let mut queue = EventQueue::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for client in topo.clients() {
            let (_, _, workload) = topo.client_spec(client).expect("client node");
            let mut gen = ArrivalGen::new(workload.clone());
            if let Some(first) = gen.next_arrival(Nanos::ZERO, &mut rng) {
                queue.schedule(first, Event::Emit(client));
            }
            nodes[client.index()].arrivals = Some(gen);
        }
        Simulation {
            topo,
            rng,
            queue,
            now: Nanos::ZERO,
            nodes,
            captures: CaptureStore::new(),
            truth: TruthRecorder::default(),
            next_req: 0,
        }
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulation time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// The capture store (what pathmap is allowed to see).
    pub fn captures(&self) -> &CaptureStore {
        &self.captures
    }

    /// The ground-truth recorder (for validation only).
    pub fn truth(&self) -> &TruthRecorder {
        &self.truth
    }

    /// Replaces the ground-truth recorder (e.g. to bound detail memory on
    /// very long runs).
    pub fn set_truth_recorder(&mut self, truth: TruthRecorder) {
        self.truth = truth;
    }

    /// High-water mark of `node`'s work queue.
    pub fn max_queue_len(&self, node: NodeId) -> usize {
        self.nodes[node.index()].max_queue
    }

    /// Processes all events up to and including time `t`, then sets the
    /// clock to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time.
    pub fn run_until(&mut self, t: Nanos) {
        assert!(t >= self.now, "cannot run backwards");
        while let Some(at) = self.queue.peek_time() {
            if at > t {
                break;
            }
            let (at, event) = self.queue.pop().expect("peeked");
            debug_assert!(at >= self.now, "event from the past");
            self.now = at;
            match event {
                Event::Emit(client) => self.handle_emit(client),
                Event::Deliver(msg) => self.handle_deliver(msg),
                Event::WorkDone(node, msg) => self.handle_work_done(node, msg),
            }
        }
        self.now = t;
    }

    /// Advances by `d` (convenience wrapper over
    /// [`run_until`](Simulation::run_until)).
    pub fn run_for(&mut self, d: Nanos) {
        self.run_until(self.now + d);
    }

    fn handle_emit(&mut self, client: NodeId) {
        let (class, target, _) = self.topo.client_spec(client).expect("client node");
        let req = RequestId::new(self.next_req);
        self.next_req += 1;
        self.truth.start(req, class, self.now);
        let msg = Message::initial_request(req, class, client, target);
        self.send(msg);
        // Schedule the next arrival.
        let gen = self.nodes[client.index()]
            .arrivals
            .as_mut()
            .expect("client arrival generator");
        if let Some(next) = gen.next_arrival(self.now, &mut self.rng) {
            self.queue.schedule(next, Event::Emit(client));
        }
    }

    /// Captures (at the sender), samples link latency, and schedules
    /// delivery of `msg`.
    fn send(&mut self, msg: Message) {
        if let Some(cfg) = self.topo.service_config(msg.src) {
            let local = cfg.clock().local(self.now);
            self.captures
                .record(msg.src, msg.src, msg.dst, local, cfg.packets_per_message());
        }
        let link = self
            .topo
            .link(msg.src, msg.dst)
            .unwrap_or_else(|| {
                panic!(
                    "no link {} -> {} (dynamic route to unlinked node?)",
                    self.topo.node_name(msg.src),
                    self.topo.node_name(msg.dst)
                )
            })
            .clone();
        let latency = link.sample(&mut self.rng);
        self.queue.schedule(self.now + latency, Event::Deliver(msg));
    }

    fn handle_deliver(&mut self, msg: Message) {
        let dst = msg.dst;
        match &self.topo.node(dst).kind {
            NodeKind::Client { .. } => {
                // Clients are untraced; a delivered message completes the
                // request.
                debug_assert_eq!(msg.kind, MsgKind::Response);
                self.truth.complete(msg.req, self.now);
            }
            NodeKind::Service(cfg) => {
                let local = cfg.clock().local(self.now);
                let packets = cfg.packets_per_message();
                self.captures.record(dst, msg.src, dst, local, packets);
                match msg.kind {
                    MsgKind::Request => {
                        self.truth.arrive(msg.req, dst, self.now);
                        self.enqueue_work(dst, msg);
                    }
                    MsgKind::Response => {
                        let state = &mut self.nodes[dst.index()];
                        // Responses without a pending join are discarded: a
                        // fire-and-forget (multicast) forwarder owes nothing
                        // upstream, so late replies from subscribers that
                        // respond anyway have nowhere to go.
                        let Some(join) = state.joins.get_mut(&msg.req) else {
                            return;
                        };
                        join.remaining -= 1;
                        if join.remaining == 0 {
                            let owed = join.owed;
                            state.joins.remove(&msg.req);
                            for _ in 0..owed {
                                self.enqueue_work(dst, msg.clone());
                            }
                        }
                    }
                }
            }
        }
    }

    fn enqueue_work(&mut self, node: NodeId, msg: Message) {
        let state = &mut self.nodes[node.index()];
        state.queue.push_back(msg);
        state.max_queue = state.max_queue.max(state.queue.len());
        self.try_start(node);
    }

    /// Starts idle servers at `node` while work is queued.
    fn try_start(&mut self, node: NodeId) {
        let cfg = self
            .topo
            .service_config(node)
            .expect("work at a client node");
        let servers = cfg.servers();
        loop {
            let state = &mut self.nodes[node.index()];
            if state.busy >= servers {
                return;
            }
            let Some(msg) = state.queue.pop_front() else {
                return;
            };
            state.busy += 1;
            let duration = match msg.kind {
                MsgKind::Request => {
                    cfg.service_time().sample(&mut self.rng) + cfg.perturb().extra_delay(self.now)
                }
                MsgKind::Response => cfg.response_time().sample(&mut self.rng),
            };
            self.queue
                .schedule(self.now + duration, Event::WorkDone(node, msg));
        }
    }

    fn handle_work_done(&mut self, node: NodeId, msg: Message) {
        let state = &mut self.nodes[node.index()];
        debug_assert!(state.busy > 0, "work done with no busy server");
        state.busy -= 1;
        match msg.kind {
            MsgKind::Request => {
                self.truth.depart(msg.req, node, self.now);
                let route = self.topo.route(node, msg.class).unwrap_or_else(|| {
                    panic!(
                        "service {} has no route for class {}",
                        self.topo.node_name(node),
                        self.topo.class_name(msg.class)
                    )
                });
                let counter = self.nodes[node.index()]
                    .rr_counters
                    .entry(msg.class)
                    .or_insert(0);
                let sink = route.is_sink();
                if let Some(hops) = route.multicast_hops() {
                    // Fire-and-forget dissemination: a copy per subscriber,
                    // no joins, no upstream response.
                    let hops = hops.to_vec();
                    for hop in hops {
                        self.send(msg.forwarded(node, hop));
                    }
                    self.try_start(node);
                    return;
                }
                match route.next_hop(msg.class, self.now, counter) {
                    Some(next) => {
                        let fanout = self
                            .topo
                            .service_config(node)
                            .expect("service node")
                            .fanout();
                        let join = self.nodes[node.index()].joins.entry(msg.req).or_default();
                        join.remaining += fanout;
                        join.owed += 1;
                        for _ in 0..fanout {
                            self.send(msg.forwarded(node, next));
                        }
                    }
                    None if sink => {
                        // Unidirectional path: the request ends here.
                    }
                    None => {
                        self.send(msg.into_response(node));
                    }
                }
            }
            MsgKind::Response => {
                self.send(msg.response_hop());
            }
        }
        self.try_start(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::TraceKey;
    use crate::dist::DelayDist;
    use crate::routing::Route;
    use crate::topology::{ServiceConfig, TopologyBuilder};
    use crate::workload::Workload;

    /// client -> ws -> app -> db chain with constant delays.
    fn chain(seed: u64) -> Simulation {
        let mut t = TopologyBuilder::new();
        let class = t.service_class("bid");
        let ws = t.service("ws", ServiceConfig::new(DelayDist::constant_millis(2)));
        let app = t.service("app", ServiceConfig::new(DelayDist::constant_millis(10)));
        let db = t.service("db", ServiceConfig::new(DelayDist::constant_millis(5)));
        let cli = t.client("cli", class, ws, Workload::poisson(20.0));
        t.connect(cli, ws, DelayDist::constant_millis(1));
        t.connect(ws, app, DelayDist::constant_millis(1));
        t.connect(app, db, DelayDist::constant_millis(1));
        t.route(ws, class, Route::fixed(app));
        t.route(app, class, Route::fixed(db));
        t.route(db, class, Route::terminal());
        Simulation::new(t.build().unwrap(), seed)
    }

    #[test]
    fn requests_complete_with_expected_latency() {
        let mut sim = chain(1);
        sim.run_until(Nanos::from_secs(20));
        let class = ClassId::new(0);
        let stats = sim.truth().class_latency(class);
        assert!(stats.count() > 200, "only {} completions", stats.count());
        // Deterministic service path: 1+2+1+10+1+5 request direction,
        // response hops: 0.1ms each at app and ws + 3 link crossings
        // = 23.2ms plus queueing.
        let mean_ms = stats.mean() / 1e6;
        assert!((23.0..30.0).contains(&mean_ms), "mean latency {mean_ms} ms");
    }

    #[test]
    fn no_requests_lost() {
        let mut sim = chain(2);
        sim.run_until(Nanos::from_secs(10));
        // Drain: stop emitting by running past the horizon; all in-flight
        // requests should complete eventually.
        let started = sim.truth().started_count();
        sim.run_until(Nanos::from_secs(11));
        let completed = sim.truth().completed_count();
        assert!(started > 0);
        // Allow the handful still in flight at the horizon.
        assert!(
            completed + 20 >= sim.truth().started_count(),
            "started {started}, completed {completed}"
        );
    }

    #[test]
    fn capture_sees_both_directions() {
        let mut sim = chain(3);
        sim.run_until(Nanos::from_secs(5));
        let (ws, app) = (NodeId::new(0), NodeId::new(1));
        let fwd = sim.captures().timestamps(TraceKey::at_receiver(ws, app));
        let back = sim.captures().timestamps(TraceKey::at_receiver(app, ws));
        assert!(!fwd.is_empty());
        assert!(!back.is_empty());
        // Roughly one response per request.
        assert!((fwd.len() as i64 - back.len() as i64).abs() < 20);
    }

    #[test]
    fn clients_are_never_observers() {
        let mut sim = chain(4);
        sim.run_until(Nanos::from_secs(2));
        let cli = NodeId::new(3);
        for (src, dst) in sim.captures().edges().collect::<Vec<_>>() {
            assert!(sim
                .captures()
                .timestamps(TraceKey {
                    observer: cli,
                    src,
                    dst
                })
                .is_empty());
        }
        // But the client edge is visible from the ws side.
        let ws = NodeId::new(0);
        assert!(!sim
            .captures()
            .timestamps(TraceKey::at_receiver(cli, ws))
            .is_empty());
        assert!(!sim
            .captures()
            .timestamps(TraceKey::at_sender(ws, cli))
            .is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = chain(7);
        let mut b = chain(7);
        a.run_until(Nanos::from_secs(3));
        b.run_until(Nanos::from_secs(3));
        assert_eq!(a.truth().completed_count(), b.truth().completed_count());
        assert_eq!(a.captures().total_packets(), b.captures().total_packets());
        let key = TraceKey::at_receiver(NodeId::new(1), NodeId::new(2));
        assert_eq!(a.captures().timestamps(key), b.captures().timestamps(key));
    }

    #[test]
    fn seed_changes_change_timing() {
        let mut a = chain(1);
        let mut b = chain(2);
        a.run_until(Nanos::from_secs(3));
        b.run_until(Nanos::from_secs(3));
        let key = TraceKey::at_receiver(NodeId::new(3), NodeId::new(0));
        assert_ne!(a.captures().timestamps(key), b.captures().timestamps(key));
    }

    #[test]
    fn fanout_multiplies_downstream_queries() {
        let mut t = TopologyBuilder::new();
        let class = t.service_class("c");
        let app = t.service(
            "app",
            ServiceConfig::new(DelayDist::constant_millis(1)).with_fanout(3),
        );
        let db = t.service("db", ServiceConfig::new(DelayDist::constant_millis(1)));
        let cli = t.client("cli", class, app, Workload::poisson(10.0));
        t.connect(cli, app, DelayDist::constant_millis(1));
        t.connect(app, db, DelayDist::constant_millis(1));
        t.route(app, class, Route::fixed(db));
        t.route(db, class, Route::terminal());
        let mut sim = Simulation::new(t.build().unwrap(), 5);
        sim.run_until(Nanos::from_secs(10));
        let (app, db, cli) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        let down = sim
            .captures()
            .timestamps(TraceKey::at_receiver(app, db))
            .len();
        let up = sim
            .captures()
            .timestamps(TraceKey::at_receiver(cli, app))
            .len();
        assert!(down >= 3 * (up - 5), "down {down}, up {up}");
        // Each client request still completes exactly once.
        assert!(sim.truth().completed_count() > 50);
        assert!(sim.truth().completed_count() <= sim.truth().started_count());
    }

    #[test]
    fn round_robin_splits_traffic() {
        let mut t = TopologyBuilder::new();
        let class = t.service_class("c");
        let ws = t.service("ws", ServiceConfig::new(DelayDist::constant_millis(1)));
        let a = t.service("a", ServiceConfig::new(DelayDist::constant_millis(1)));
        let b = t.service("b", ServiceConfig::new(DelayDist::constant_millis(1)));
        let cli = t.client("cli", class, ws, Workload::poisson(50.0));
        t.connect(cli, ws, DelayDist::constant_millis(1));
        t.connect(ws, a, DelayDist::constant_millis(1));
        t.connect(ws, b, DelayDist::constant_millis(1));
        t.route(ws, class, Route::round_robin(vec![a, b]));
        t.route(a, class, Route::terminal());
        t.route(b, class, Route::terminal());
        let mut sim = Simulation::new(t.build().unwrap(), 6);
        sim.run_until(Nanos::from_secs(10));
        let (ws, a, b) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        let to_a = sim
            .captures()
            .timestamps(TraceKey::at_receiver(ws, a))
            .len();
        let to_b = sim
            .captures()
            .timestamps(TraceKey::at_receiver(ws, b))
            .len();
        assert!((to_a as i64 - to_b as i64).abs() <= 1, "{to_a} vs {to_b}");
    }

    #[test]
    fn queue_high_water_mark_tracked() {
        // Overloaded server: arrival rate 100/s, service 20ms (capacity 50/s).
        let mut t = TopologyBuilder::new();
        let class = t.service_class("c");
        let svc = t.service("svc", ServiceConfig::new(DelayDist::constant_millis(20)));
        let cli = t.client("cli", class, svc, Workload::poisson(100.0));
        t.connect(cli, svc, DelayDist::constant_millis(1));
        t.route(svc, class, Route::terminal());
        let mut sim = Simulation::new(t.build().unwrap(), 8);
        sim.run_until(Nanos::from_secs(10));
        assert!(sim.max_queue_len(NodeId::new(0)) > 100);
    }

    #[test]
    fn multi_server_reduces_queueing() {
        // Arrival 100/s, service 20 ms: a single server saturates (rho=2)
        // while four servers leave headroom (rho=0.5).
        let build = |servers: u32| {
            let mut t = TopologyBuilder::new();
            let class = t.service_class("c");
            let svc = t.service(
                "svc",
                ServiceConfig::new(DelayDist::constant_millis(20)).with_servers(servers),
            );
            let cli = t.client("cli", class, svc, Workload::poisson(100.0));
            t.connect(cli, svc, DelayDist::constant_millis(1));
            t.route(svc, class, Route::terminal());
            Simulation::new(t.build().unwrap(), 17)
        };
        let mut single = build(1);
        let mut quad = build(4);
        single.run_until(Nanos::from_secs(10));
        quad.run_until(Nanos::from_secs(10));
        let class = ClassId::new(0);
        let s = single.truth().class_latency(class).mean();
        let q = quad.truth().class_latency(class).mean();
        assert!(s > 10.0 * q, "single {s} vs quad {q}");
        // Quad stays near the no-queueing latency: 20ms + 2ms links + eps.
        assert!(q < 35e6, "quad {q}");
    }

    #[test]
    #[should_panic(expected = "cannot run backwards")]
    fn running_backwards_panics() {
        let mut sim = chain(1);
        sim.run_until(Nanos::from_secs(1));
        sim.run_until(Nanos::from_millis(1));
    }
}
