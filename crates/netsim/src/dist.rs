//! Delay distributions for service times, link latencies, and think times.
//!
//! Implemented directly on top of `rand`'s uniform primitives (inverse-CDF
//! for the exponential, Box–Muller for the clamped normal) to keep the
//! dependency surface to the offline crate set.

use e2eprof_timeseries::Nanos;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution over non-negative delays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DelayDist {
    /// Always exactly this long.
    Constant(Nanos),
    /// Uniform over `[lo, hi]`.
    Uniform {
        /// Lower bound (inclusive).
        lo: Nanos,
        /// Upper bound (inclusive).
        hi: Nanos,
    },
    /// Exponential with the given mean (memoryless service).
    Exponential {
        /// Mean delay.
        mean: Nanos,
    },
    /// Normal with the given mean and standard deviation, clamped at zero.
    Normal {
        /// Mean delay.
        mean: Nanos,
        /// Standard deviation.
        std_dev: Nanos,
    },
}

impl DelayDist {
    /// A constant delay of `ms` milliseconds.
    pub fn constant_millis(ms: u64) -> Self {
        DelayDist::Constant(Nanos::from_millis(ms))
    }

    /// A uniform delay between `lo_ms` and `hi_ms` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `lo_ms > hi_ms`.
    pub fn uniform_millis(lo_ms: u64, hi_ms: u64) -> Self {
        assert!(lo_ms <= hi_ms, "uniform bounds reversed");
        DelayDist::Uniform {
            lo: Nanos::from_millis(lo_ms),
            hi: Nanos::from_millis(hi_ms),
        }
    }

    /// An exponential delay with mean `ms` milliseconds.
    pub fn exponential_millis(ms: u64) -> Self {
        DelayDist::Exponential {
            mean: Nanos::from_millis(ms),
        }
    }

    /// A zero-clamped normal delay with mean and standard deviation in
    /// milliseconds.
    pub fn normal_millis(mean_ms: u64, std_ms: u64) -> Self {
        DelayDist::Normal {
            mean: Nanos::from_millis(mean_ms),
            std_dev: Nanos::from_millis(std_ms),
        }
    }

    /// The distribution's mean.
    pub fn mean(&self) -> Nanos {
        match *self {
            DelayDist::Constant(d) => d,
            DelayDist::Uniform { lo, hi } => Nanos::from_nanos((lo.as_nanos() + hi.as_nanos()) / 2),
            DelayDist::Exponential { mean } => mean,
            // Clamping at zero biases the mean upward slightly; ignored —
            // configuration keeps std well under mean.
            DelayDist::Normal { mean, .. } => mean,
        }
    }

    /// Draws one delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Nanos {
        match *self {
            DelayDist::Constant(d) => d,
            DelayDist::Uniform { lo, hi } => {
                Nanos::from_nanos(rng.gen_range(lo.as_nanos()..=hi.as_nanos()))
            }
            DelayDist::Exponential { mean } => {
                // Inverse CDF: −mean · ln(U), U ∈ (0, 1].
                let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
                let d = -(mean.as_nanos() as f64) * u.ln();
                Nanos::from_nanos(d.round() as u64)
            }
            DelayDist::Normal { mean, std_dev } => {
                // Box–Muller.
                let u1: f64 = (1.0 - rng.gen::<f64>()).max(f64::MIN_POSITIVE);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let d = mean.as_nanos() as f64 + std_dev.as_nanos() as f64 * z;
                Nanos::from_nanos(d.max(0.0).round() as u64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn empirical_mean(dist: &DelayDist, n: usize) -> f64 {
        let mut r = rng();
        (0..n)
            .map(|_| dist.sample(&mut r).as_nanos() as f64)
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = DelayDist::constant_millis(5);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), Nanos::from_millis(5));
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let d = DelayDist::uniform_millis(2, 8);
        let mut r = rng();
        for _ in 0..1000 {
            let s = d.sample(&mut r);
            assert!(s >= Nanos::from_millis(2) && s <= Nanos::from_millis(8));
        }
        let m = empirical_mean(&d, 20_000);
        assert!((m - 5e6).abs() < 0.2e6, "mean {m}");
    }

    #[test]
    fn exponential_mean_converges() {
        let d = DelayDist::exponential_millis(10);
        let m = empirical_mean(&d, 50_000);
        assert!((m - 10e6).abs() < 0.5e6, "mean {m}");
    }

    #[test]
    fn normal_mean_converges_and_clamps() {
        let d = DelayDist::normal_millis(10, 2);
        let m = empirical_mean(&d, 50_000);
        assert!((m - 10e6).abs() < 0.5e6, "mean {m}");
        // Heavily clamped distribution never goes negative.
        let d = DelayDist::normal_millis(1, 50);
        let mut r = rng();
        for _ in 0..1000 {
            let _ = d.sample(&mut r); // Nanos is unsigned; just must not panic
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = DelayDist::exponential_millis(3);
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "bounds reversed")]
    fn reversed_uniform_rejected() {
        let _ = DelayDist::uniform_millis(9, 2);
    }

    #[test]
    fn means_reported() {
        assert_eq!(DelayDist::constant_millis(4).mean(), Nanos::from_millis(4));
        assert_eq!(
            DelayDist::uniform_millis(2, 8).mean(),
            Nanos::from_millis(5)
        );
        assert_eq!(
            DelayDist::exponential_millis(7).mean(),
            Nanos::from_millis(7)
        );
    }
}
