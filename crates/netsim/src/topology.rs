//! Topology definition: nodes, links, routes, and service classes.

use crate::clock::NodeClock;
use crate::dist::DelayDist;
use crate::ids::{ClassId, NodeId};
use crate::perturb::DelaySchedule;
use crate::routing::Route;
use crate::workload::Workload;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::error::Error;
use std::fmt;

/// Configuration of one service node.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    service_time: DelayDist,
    response_time: DelayDist,
    fanout: u32,
    perturb: DelaySchedule,
    clock: NodeClock,
    packets_per_message: u32,
    servers: u32,
}

impl ServiceConfig {
    /// A service node with the given request service-time distribution.
    ///
    /// Defaults: 100 µs response-hop processing, fanout 1, no
    /// perturbation, synchronized clock, one packet per message.
    pub fn new(service_time: DelayDist) -> Self {
        ServiceConfig {
            service_time,
            response_time: DelayDist::Constant(e2eprof_timeseries::Nanos::from_micros(100)),
            fanout: 1,
            perturb: DelaySchedule::None,
            clock: NodeClock::synchronized(),
            packets_per_message: 1,
            servers: 1,
        }
    }

    /// Sets the response-hop processing-time distribution.
    pub fn with_response_time(mut self, dist: DelayDist) -> Self {
        self.response_time = dist;
        self
    }

    /// Sets the downstream fanout: the number of back-to-back queries this
    /// node issues per forwarded request (e.g. an EJB server issuing
    /// multiple database queries per client request).
    ///
    /// # Panics
    ///
    /// Panics if `fanout` is zero.
    pub fn with_fanout(mut self, fanout: u32) -> Self {
        assert!(fanout >= 1, "fanout must be at least 1");
        self.fanout = fanout;
        self
    }

    /// Attaches a time-varying extra processing delay.
    pub fn with_perturbation(mut self, schedule: DelaySchedule) -> Self {
        self.perturb = schedule;
        self
    }

    /// Sets this node's local clock (skew/drift injection).
    pub fn with_clock(mut self, clock: NodeClock) -> Self {
        self.clock = clock;
        self
    }

    /// Sets how many packets each logical message produces on the wire
    /// (back-to-back, identical timestamps).
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn with_packets_per_message(mut self, packets: u32) -> Self {
        assert!(packets >= 1, "at least one packet per message");
        self.packets_per_message = packets;
        self
    }

    /// The request service-time distribution.
    pub fn service_time(&self) -> &DelayDist {
        &self.service_time
    }

    /// The response-hop processing-time distribution.
    pub fn response_time(&self) -> &DelayDist {
        &self.response_time
    }

    /// Downstream queries per forwarded request.
    pub fn fanout(&self) -> u32 {
        self.fanout
    }

    /// The perturbation schedule.
    pub fn perturb(&self) -> &DelaySchedule {
        &self.perturb
    }

    /// The node's clock.
    pub fn clock(&self) -> NodeClock {
        self.clock
    }

    /// Packets per logical message.
    pub fn packets_per_message(&self) -> u32 {
        self.packets_per_message
    }

    /// Sets the number of parallel servers (worker threads) at this node.
    ///
    /// Multi-threaded middleware (servlet containers, EJB servers,
    /// databases) processes requests concurrently; a single shared FIFO
    /// queue feeds `servers` parallel workers (M/G/k).
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn with_servers(mut self, servers: u32) -> Self {
        assert!(servers >= 1, "at least one server");
        self.servers = servers;
        self
    }

    /// Number of parallel servers.
    pub fn servers(&self) -> u32 {
        self.servers
    }
}

/// What a node is.
#[derive(Debug, Clone)]
pub enum NodeKind {
    /// A request source: one service class, one front-end target, one
    /// arrival process.
    Client {
        /// The class all this client's requests belong to.
        class: ClassId,
        /// The front-end service node requests are sent to.
        target: NodeId,
        /// The arrival process.
        workload: Workload,
    },
    /// A service node.
    Service(ServiceConfig),
}

/// One node's definition.
#[derive(Debug, Clone)]
pub struct NodeDef {
    /// Human-readable label (unique within the topology).
    pub name: String,
    /// Client or service.
    pub kind: NodeKind,
}

/// Errors detected when validating a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// Two nodes share a name.
    DuplicateName(String),
    /// A route or client references a link that was never declared.
    MissingLink {
        /// Sending side.
        from: String,
        /// Receiving side.
        to: String,
    },
    /// A client targets (or a route forwards to) a client node.
    NotAService(String),
    /// A service node lacks a route for a class whose requests can reach it.
    MissingRoute {
        /// The service node.
        node: String,
        /// The class lacking a route.
        class: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DuplicateName(n) => write!(f, "duplicate node name {n:?}"),
            TopologyError::MissingLink { from, to } => {
                write!(f, "no link declared from {from:?} to {to:?}")
            }
            TopologyError::NotAService(n) => {
                write!(f, "node {n:?} is a client but is used as a service")
            }
            TopologyError::MissingRoute { node, class } => {
                write!(f, "service {node:?} has no route for class {class:?}")
            }
        }
    }
}

impl Error for TopologyError {}

/// A validated topology.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<NodeDef>,
    classes: Vec<String>,
    links: HashMap<(NodeId, NodeId), DelayDist>,
    routes: HashMap<(NodeId, ClassId), Route>,
}

impl Topology {
    /// All node definitions, indexed by [`NodeId`].
    pub fn nodes(&self) -> &[NodeDef] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The definition of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &NodeDef {
        &self.nodes[id.index()]
    }

    /// The label of `id`.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.index()].name
    }

    /// Looks a node up by label.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId::new(i as u32))
    }

    /// Whether `id` is a client node.
    pub fn is_client(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.index()].kind, NodeKind::Client { .. })
    }

    /// The service configuration of `id`, if it is a service node.
    pub fn service_config(&self, id: NodeId) -> Option<&ServiceConfig> {
        match &self.nodes[id.index()].kind {
            NodeKind::Service(cfg) => Some(cfg),
            NodeKind::Client { .. } => None,
        }
    }

    /// All client node ids.
    pub fn clients(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId::new)
            .filter(|&n| self.is_client(n))
            .collect()
    }

    /// All service node ids.
    pub fn services(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId::new)
            .filter(|&n| !self.is_client(n))
            .collect()
    }

    /// Service-class names, indexed by [`ClassId`].
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// The name of a class.
    pub fn class_name(&self, class: ClassId) -> &str {
        &self.classes[class.index()]
    }

    /// The latency distribution of the directed link `from → to`, if any.
    pub fn link(&self, from: NodeId, to: NodeId) -> Option<&DelayDist> {
        self.links.get(&(from, to))
    }

    /// The route of `(node, class)`, if declared.
    pub fn route(&self, node: NodeId, class: ClassId) -> Option<&Route> {
        self.routes.get(&(node, class))
    }

    /// Front-end service nodes: the targets of client nodes, with the set
    /// of client nodes attached to each (the roots of pathmap's search).
    pub fn front_ends(&self) -> BTreeMap<NodeId, Vec<NodeId>> {
        let mut map: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for (i, def) in self.nodes.iter().enumerate() {
            if let NodeKind::Client { target, .. } = def.kind {
                map.entry(target).or_default().push(NodeId::new(i as u32));
            }
        }
        map
    }

    /// The client's `(class, target, workload)`, if `id` is a client.
    pub fn client_spec(&self, id: NodeId) -> Option<(ClassId, NodeId, &Workload)> {
        match &self.nodes[id.index()].kind {
            NodeKind::Client {
                class,
                target,
                workload,
            } => Some((*class, *target, workload)),
            NodeKind::Service(_) => None,
        }
    }
}

/// Incremental topology constructor.
///
/// See the crate-level example for typical usage.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<NodeDef>,
    classes: Vec<String>,
    links: HashMap<(NodeId, NodeId), DelayDist>,
    routes: HashMap<(NodeId, ClassId), Route>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a service class and returns its id.
    pub fn service_class(&mut self, name: &str) -> ClassId {
        let id = ClassId::new(self.classes.len() as u16);
        self.classes.push(name.to_owned());
        id
    }

    /// Adds a service node.
    pub fn service(&mut self, name: &str, config: ServiceConfig) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(NodeDef {
            name: name.to_owned(),
            kind: NodeKind::Service(config),
        });
        id
    }

    /// Adds a client node issuing `class` requests to `target` according to
    /// `workload`.
    pub fn client(
        &mut self,
        name: &str,
        class: ClassId,
        target: NodeId,
        workload: Workload,
    ) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(NodeDef {
            name: name.to_owned(),
            kind: NodeKind::Client {
                class,
                target,
                workload,
            },
        });
        id
    }

    /// Declares a bidirectional link between `a` and `b` with the given
    /// per-crossing latency distribution.
    pub fn connect(&mut self, a: NodeId, b: NodeId, latency: DelayDist) {
        self.links.insert((a, b), latency.clone());
        self.links.insert((b, a), latency);
    }

    /// Declares the route taken by `class` requests after service at
    /// `node`.
    pub fn route(&mut self, node: NodeId, class: ClassId, route: Route) {
        self.routes.insert((node, class), route);
    }

    /// Validates and freezes the topology.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] for duplicate names, dangling links,
    /// clients used as services, or service nodes statically reachable by a
    /// class without a route for it.
    pub fn build(self) -> Result<Topology, TopologyError> {
        let topo = Topology {
            nodes: self.nodes,
            classes: self.classes,
            links: self.links,
            routes: self.routes,
        };
        // Unique names.
        let mut seen = BTreeSet::new();
        for def in &topo.nodes {
            if !seen.insert(def.name.as_str()) {
                return Err(TopologyError::DuplicateName(def.name.clone()));
            }
        }
        // Clients: target must be a linked service.
        for (i, def) in topo.nodes.iter().enumerate() {
            if let NodeKind::Client { target, .. } = def.kind {
                let id = NodeId::new(i as u32);
                if topo.is_client(target) {
                    return Err(TopologyError::NotAService(
                        topo.node_name(target).to_owned(),
                    ));
                }
                if topo.link(id, target).is_none() {
                    return Err(TopologyError::MissingLink {
                        from: def.name.clone(),
                        to: topo.node_name(target).to_owned(),
                    });
                }
            }
        }
        // Static route hops must be linked services; routes must exist along
        // every statically reachable path.
        for (&(node, class), route) in &topo.routes {
            for hop in route.candidate_hops() {
                if topo.is_client(hop) {
                    return Err(TopologyError::NotAService(topo.node_name(hop).to_owned()));
                }
                if topo.link(node, hop).is_none() {
                    return Err(TopologyError::MissingLink {
                        from: topo.node_name(node).to_owned(),
                        to: topo.node_name(hop).to_owned(),
                    });
                }
                if topo.route(hop, class).is_none() {
                    return Err(TopologyError::MissingRoute {
                        node: topo.node_name(hop).to_owned(),
                        class: topo.class_name(class).to_owned(),
                    });
                }
            }
        }
        // Every client's front end must have a route for the client's class.
        for (i, def) in topo.nodes.iter().enumerate() {
            let _ = i;
            if let NodeKind::Client { class, target, .. } = def.kind {
                if topo.route(target, class).is_none() {
                    return Err(TopologyError::MissingRoute {
                        node: topo.node_name(target).to_owned(),
                        class: topo.class_name(class).to_owned(),
                    });
                }
            }
        }
        Ok(topo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> TopologyBuilder {
        let mut t = TopologyBuilder::new();
        let class = t.service_class("c");
        let svc = t.service("svc", ServiceConfig::new(DelayDist::constant_millis(1)));
        let cli = t.client("cli", class, svc, Workload::poisson(1.0));
        t.connect(cli, svc, DelayDist::constant_millis(1));
        t.route(svc, class, Route::terminal());
        t
    }

    #[test]
    fn minimal_topology_builds() {
        let topo = minimal().build().unwrap();
        assert_eq!(topo.num_nodes(), 2);
        assert_eq!(topo.clients().len(), 1);
        assert_eq!(topo.services().len(), 1);
        assert_eq!(topo.node_by_name("svc"), Some(NodeId::new(0)));
        assert_eq!(topo.front_ends().len(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut t = minimal();
        let _ = t.service("svc", ServiceConfig::new(DelayDist::constant_millis(1)));
        assert_eq!(
            t.build().unwrap_err(),
            TopologyError::DuplicateName("svc".into())
        );
    }

    #[test]
    fn client_without_link_rejected() {
        let mut t = TopologyBuilder::new();
        let class = t.service_class("c");
        let svc = t.service("svc", ServiceConfig::new(DelayDist::constant_millis(1)));
        let _cli = t.client("cli", class, svc, Workload::poisson(1.0));
        t.route(svc, class, Route::terminal());
        assert!(matches!(
            t.build().unwrap_err(),
            TopologyError::MissingLink { .. }
        ));
    }

    #[test]
    fn route_to_unlinked_node_rejected() {
        let mut t = minimal();
        let class = ClassId::new(0);
        let other = t.service("other", ServiceConfig::new(DelayDist::constant_millis(1)));
        t.route(other, class, Route::terminal());
        t.route(NodeId::new(0), class, Route::fixed(other));
        assert!(matches!(
            t.build().unwrap_err(),
            TopologyError::MissingLink { .. }
        ));
    }

    #[test]
    fn downstream_missing_route_rejected() {
        let mut t = minimal();
        let class = ClassId::new(0);
        let svc = NodeId::new(0);
        let other = t.service("other", ServiceConfig::new(DelayDist::constant_millis(1)));
        t.connect(svc, other, DelayDist::constant_millis(1));
        t.route(svc, class, Route::fixed(other));
        // `other` has no route for the class.
        assert!(matches!(
            t.build().unwrap_err(),
            TopologyError::MissingRoute { .. }
        ));
    }

    #[test]
    fn front_end_missing_route_rejected() {
        let mut t = TopologyBuilder::new();
        let class = t.service_class("c");
        let svc = t.service("svc", ServiceConfig::new(DelayDist::constant_millis(1)));
        let cli = t.client("cli", class, svc, Workload::poisson(1.0));
        t.connect(cli, svc, DelayDist::constant_millis(1));
        assert!(matches!(
            t.build().unwrap_err(),
            TopologyError::MissingRoute { .. }
        ));
    }

    #[test]
    fn service_config_builder_chains() {
        use e2eprof_timeseries::Nanos;
        let cfg = ServiceConfig::new(DelayDist::constant_millis(3))
            .with_response_time(DelayDist::constant_millis(1))
            .with_fanout(4)
            .with_perturbation(DelaySchedule::Constant(Nanos::from_millis(2)))
            .with_clock(NodeClock::with_skew_millis(1))
            .with_packets_per_message(2);
        assert_eq!(cfg.fanout(), 4);
        assert_eq!(cfg.packets_per_message(), 2);
        assert_eq!(cfg.clock().skew_ns(), 1_000_000);
    }

    #[test]
    fn error_messages_render() {
        let e = TopologyError::MissingRoute {
            node: "a".into(),
            class: "c".into(),
        };
        assert!(e.to_string().contains("no route"));
    }
}
