//! Time-varying extra-delay schedules for perturbation experiments.
//!
//! The paper's change-detection experiment (Fig. 7) injects an artificial
//! delay into one EJB server, increased every 3 minutes; the SLA scheduling
//! experiment (Table 1) perturbs both EJB servers with random 0–100 ms
//! delays changing once per minute. `DelaySchedule` expresses both as a
//! pure function of simulation time, keeping the simulator deterministic.

use e2eprof_timeseries::Nanos;
use serde::{Deserialize, Serialize};

/// A deterministic extra processing delay as a function of time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum DelaySchedule {
    /// No extra delay.
    #[default]
    None,
    /// A fixed extra delay at all times.
    Constant(Nanos),
    /// Zero before `start`; afterwards `step · (1 + ⌊(t − start)/period⌋)`
    /// — the Fig. 7 staircase, increasing every `period`.
    Staircase {
        /// When the staircase starts.
        start: Nanos,
        /// Duration of each step.
        period: Nanos,
        /// Height added per step.
        step: Nanos,
    },
    /// Piecewise-constant: `(from, extra)` entries sorted by `from`; the
    /// extra delay in force at time `t` is that of the last entry with
    /// `from ≤ t` (zero before the first entry).
    Piecewise(
        /// Sorted `(from, extra)` change points.
        Vec<(Nanos, Nanos)>,
    ),
    /// Uniformly random in `[0, max)` per `period`-long interval, derived
    /// by hashing `(seed, interval index)` — deterministic, no RNG state
    /// (the Table 1 perturbation).
    RandomPiecewise {
        /// Interval length between re-draws.
        period: Nanos,
        /// Exclusive upper bound on the extra delay.
        max: Nanos,
        /// Hash seed.
        seed: u64,
    },
}

/// SplitMix64 finalizer — a well-distributed 64-bit hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl DelaySchedule {
    /// A staircase starting at `start`, adding `step` every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn staircase(start: Nanos, period: Nanos, step: Nanos) -> Self {
        assert!(period > Nanos::ZERO, "staircase period must be positive");
        DelaySchedule::Staircase {
            start,
            period,
            step,
        }
    }

    /// Uniform random extra delay in `[0, max)`, re-drawn each `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn random_piecewise(period: Nanos, max: Nanos, seed: u64) -> Self {
        assert!(period > Nanos::ZERO, "period must be positive");
        DelaySchedule::RandomPiecewise { period, max, seed }
    }

    /// The extra delay in force at time `now`.
    pub fn extra_delay(&self, now: Nanos) -> Nanos {
        match self {
            DelaySchedule::None => Nanos::ZERO,
            DelaySchedule::Constant(d) => *d,
            DelaySchedule::Staircase {
                start,
                period,
                step,
            } => match now.checked_sub(*start) {
                None => Nanos::ZERO,
                Some(elapsed) => {
                    let steps = elapsed.as_nanos() / period.as_nanos() + 1;
                    Nanos::from_nanos(step.as_nanos() * steps)
                }
            },
            DelaySchedule::Piecewise(entries) => {
                let i = entries.partition_point(|&(from, _)| from <= now);
                if i == 0 {
                    Nanos::ZERO
                } else {
                    entries[i - 1].1
                }
            }
            DelaySchedule::RandomPiecewise { period, max, seed } => {
                if max.as_nanos() == 0 {
                    return Nanos::ZERO;
                }
                let idx = now.as_nanos() / period.as_nanos();
                let h = mix(seed ^ mix(idx));
                Nanos::from_nanos(h % max.as_nanos())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_and_constant() {
        assert_eq!(
            DelaySchedule::None.extra_delay(Nanos::from_secs(5)),
            Nanos::ZERO
        );
        assert_eq!(
            DelaySchedule::Constant(Nanos::from_millis(7)).extra_delay(Nanos::ZERO),
            Nanos::from_millis(7)
        );
    }

    #[test]
    fn staircase_steps_up() {
        let s = DelaySchedule::staircase(
            Nanos::from_minutes(1),
            Nanos::from_minutes(3),
            Nanos::from_millis(20),
        );
        assert_eq!(s.extra_delay(Nanos::from_secs(30)), Nanos::ZERO);
        assert_eq!(
            s.extra_delay(Nanos::from_minutes(1)),
            Nanos::from_millis(20)
        );
        assert_eq!(
            s.extra_delay(Nanos::from_minutes(3)),
            Nanos::from_millis(20)
        );
        assert_eq!(
            s.extra_delay(Nanos::from_minutes(4)),
            Nanos::from_millis(40)
        );
        assert_eq!(
            s.extra_delay(Nanos::from_minutes(7)),
            Nanos::from_millis(60)
        );
    }

    #[test]
    fn piecewise_lookup() {
        let s = DelaySchedule::Piecewise(vec![
            (Nanos::from_secs(10), Nanos::from_millis(5)),
            (Nanos::from_secs(20), Nanos::from_millis(50)),
        ]);
        assert_eq!(s.extra_delay(Nanos::from_secs(5)), Nanos::ZERO);
        assert_eq!(s.extra_delay(Nanos::from_secs(10)), Nanos::from_millis(5));
        assert_eq!(s.extra_delay(Nanos::from_secs(19)), Nanos::from_millis(5));
        assert_eq!(s.extra_delay(Nanos::from_secs(25)), Nanos::from_millis(50));
    }

    #[test]
    fn random_piecewise_is_constant_within_period() {
        let s =
            DelaySchedule::random_piecewise(Nanos::from_minutes(1), Nanos::from_millis(100), 42);
        let a = s.extra_delay(Nanos::from_secs(61));
        let b = s.extra_delay(Nanos::from_secs(119));
        assert_eq!(a, b);
        assert!(a < Nanos::from_millis(100));
    }

    #[test]
    fn random_piecewise_varies_across_periods() {
        let s =
            DelaySchedule::random_piecewise(Nanos::from_minutes(1), Nanos::from_millis(100), 42);
        let values: Vec<Nanos> = (0..20)
            .map(|m| s.extra_delay(Nanos::from_minutes(m)))
            .collect();
        let distinct: std::collections::HashSet<_> = values.iter().collect();
        assert!(
            distinct.len() > 10,
            "only {} distinct values",
            distinct.len()
        );
    }

    #[test]
    fn random_piecewise_deterministic_per_seed() {
        let a = DelaySchedule::random_piecewise(Nanos::from_secs(10), Nanos::from_millis(50), 7);
        let b = DelaySchedule::random_piecewise(Nanos::from_secs(10), Nanos::from_millis(50), 7);
        for s in 0..50 {
            assert_eq!(
                a.extra_delay(Nanos::from_secs(s)),
                b.extra_delay(Nanos::from_secs(s))
            );
        }
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = DelaySchedule::random_piecewise(Nanos::ZERO, Nanos::from_millis(1), 0);
    }
}
