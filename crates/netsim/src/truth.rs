//! Ground-truth instrumentation — the simulator-side equivalent of the
//! paper's piggybacked latency tracking (Section 4.1.1).
//!
//! The paper validates pathmap by instrumenting RUBiS' servlets and EJB
//! components to carry per-server latency information in requests and
//! responses. Our simulator has perfect knowledge, so the recorder simply
//! logs request lifecycle events and aggregates per-class end-to-end
//! latencies and per-node processing delays for comparison against
//! pathmap's inferences. None of this is visible to pathmap.

use crate::ids::{ClassId, NodeId, RequestId};
use e2eprof_timeseries::stats::Welford;
use e2eprof_timeseries::Nanos;
use std::collections::HashMap;

/// Full lifecycle of one request (retained for the first
/// `detail_limit` requests).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Service class.
    pub class: ClassId,
    /// Emission time at the client.
    pub start: Nanos,
    /// Response arrival back at the client, if completed.
    pub complete: Option<Nanos>,
    /// Per-node `(node, arrival, departure)` of the request direction, in
    /// visit order.
    pub hops: Vec<(NodeId, Nanos, Option<Nanos>)>,
}

impl RequestRecord {
    /// The request's node path (visit order, client excluded).
    pub fn path(&self) -> Vec<NodeId> {
        self.hops.iter().map(|&(n, _, _)| n).collect()
    }

    /// End-to-end latency, if completed.
    pub fn latency(&self) -> Option<Nanos> {
        self.complete.map(|c| c - self.start)
    }
}

/// Aggregating ground-truth recorder.
#[derive(Debug, Clone)]
pub struct TruthRecorder {
    details: HashMap<RequestId, RequestRecord>,
    detail_limit: usize,
    /// In-flight (request, node) arrival times awaiting departure.
    pending: HashMap<(RequestId, NodeId), Nanos>,
    /// Class of each in-flight request (dropped on completion).
    classes: HashMap<RequestId, (ClassId, Nanos)>,
    class_latency: HashMap<ClassId, Welford>,
    node_processing: HashMap<(ClassId, NodeId), Welford>,
    started: u64,
    completed: u64,
}

impl Default for TruthRecorder {
    fn default() -> Self {
        TruthRecorder::new(200_000)
    }
}

impl TruthRecorder {
    /// Creates a recorder retaining per-request detail for at most
    /// `detail_limit` requests (aggregates are always exact).
    pub fn new(detail_limit: usize) -> Self {
        TruthRecorder {
            details: HashMap::new(),
            detail_limit,
            pending: HashMap::new(),
            classes: HashMap::new(),
            class_latency: HashMap::new(),
            node_processing: HashMap::new(),
            started: 0,
            completed: 0,
        }
    }

    /// Records a request's emission.
    pub fn start(&mut self, req: RequestId, class: ClassId, at: Nanos) {
        self.started += 1;
        self.classes.insert(req, (class, at));
        if self.details.len() < self.detail_limit {
            self.details.insert(
                req,
                RequestRecord {
                    class,
                    start: at,
                    complete: None,
                    hops: Vec::new(),
                },
            );
        }
    }

    /// Records the request's arrival at a service node.
    pub fn arrive(&mut self, req: RequestId, node: NodeId, at: Nanos) {
        self.pending.insert((req, node), at);
        if let Some(rec) = self.details.get_mut(&req) {
            rec.hops.push((node, at, None));
        }
    }

    /// Records the request's departure (forward or response generation)
    /// from a service node. The interval since arrival is the node's
    /// processing delay (queueing + service).
    pub fn depart(&mut self, req: RequestId, node: NodeId, at: Nanos) {
        if let Some(arrived) = self.pending.remove(&(req, node)) {
            if let Some((class, _)) = self.classes.get(&req) {
                self.node_processing
                    .entry((*class, node))
                    .or_default()
                    .push((at - arrived).as_nanos() as f64);
            }
        }
        if let Some(rec) = self.details.get_mut(&req) {
            if let Some(hop) = rec
                .hops
                .iter_mut()
                .rev()
                .find(|(n, _, d)| *n == node && d.is_none())
            {
                hop.2 = Some(at);
            }
        }
    }

    /// Records the response's arrival back at the client.
    pub fn complete(&mut self, req: RequestId, at: Nanos) {
        if let Some((class, started)) = self.classes.remove(&req) {
            self.completed += 1;
            self.class_latency
                .entry(class)
                .or_default()
                .push((at - started).as_nanos() as f64);
        }
        if let Some(rec) = self.details.get_mut(&req) {
            rec.complete = Some(at);
        }
    }

    /// Number of requests emitted.
    pub fn started_count(&self) -> u64 {
        self.started
    }

    /// Number of requests completed end-to-end.
    pub fn completed_count(&self) -> u64 {
        self.completed
    }

    /// End-to-end latency statistics of a class (nanoseconds).
    pub fn class_latency(&self, class: ClassId) -> Welford {
        self.class_latency.get(&class).copied().unwrap_or_default()
    }

    /// Processing-delay statistics (queueing + service, nanoseconds) of
    /// `class` requests at `node`.
    pub fn node_processing(&self, class: ClassId, node: NodeId) -> Welford {
        self.node_processing
            .get(&(class, node))
            .copied()
            .unwrap_or_default()
    }

    /// The retained detail record of a request, if any.
    pub fn request(&self, req: RequestId) -> Option<&RequestRecord> {
        self.details.get(&req)
    }

    /// Distinct node paths taken by completed `class` requests (from
    /// retained details), with counts.
    pub fn class_paths(&self, class: ClassId) -> HashMap<Vec<NodeId>, usize> {
        let mut map = HashMap::new();
        for rec in self.details.values() {
            if rec.class == class && rec.complete.is_some() {
                *map.entry(rec.path()).or_insert(0) += 1;
            }
        }
        map
    }

    /// Latency statistics of completed `class` requests within
    /// `[from, to)`, from retained details (for windowed comparisons like
    /// Table 1).
    pub fn class_latency_between(&self, class: ClassId, from: Nanos, to: Nanos) -> Welford {
        let mut w = Welford::new();
        for rec in self.details.values() {
            if rec.class != class {
                continue;
            }
            if let Some(done) = rec.complete {
                if rec.start >= from && rec.start < to {
                    w.push((done - rec.start).as_nanos() as f64);
                }
            }
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u64) -> RequestId {
        RequestId::new(i)
    }
    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }
    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    #[test]
    fn lifecycle_aggregates() {
        let mut t = TruthRecorder::default();
        let c = ClassId::new(0);
        t.start(r(1), c, ms(0));
        t.arrive(r(1), n(1), ms(2));
        t.depart(r(1), n(1), ms(7));
        t.complete(r(1), ms(12));
        assert_eq!(t.started_count(), 1);
        assert_eq!(t.completed_count(), 1);
        assert_eq!(t.class_latency(c).mean(), 12e6);
        assert_eq!(t.node_processing(c, n(1)).mean(), 5e6);
        let rec = t.request(r(1)).unwrap();
        assert_eq!(rec.path(), vec![n(1)]);
        assert_eq!(rec.latency(), Some(ms(12)));
    }

    #[test]
    fn detail_limit_preserves_aggregates() {
        let mut t = TruthRecorder::new(1);
        let c = ClassId::new(0);
        for i in 0..5 {
            t.start(r(i), c, ms(i));
            t.complete(r(i), ms(i + 10));
        }
        assert_eq!(t.completed_count(), 5);
        assert_eq!(t.class_latency(c).count(), 5);
        assert_eq!(t.class_latency(c).mean(), 10e6);
        assert!(t.request(r(4)).is_none()); // detail dropped
        assert!(t.request(r(0)).is_some());
    }

    #[test]
    fn class_paths_counts_distinct_routes() {
        let mut t = TruthRecorder::default();
        let c = ClassId::new(0);
        for (i, mid) in [(0u64, 1u32), (1, 2), (2, 1)] {
            t.start(r(i), c, ms(0));
            t.arrive(r(i), n(mid), ms(1));
            t.depart(r(i), n(mid), ms(2));
            t.arrive(r(i), n(9), ms(3));
            t.depart(r(i), n(9), ms(4));
            t.complete(r(i), ms(8));
        }
        let paths = t.class_paths(c);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[&vec![n(1), n(9)]], 2);
        assert_eq!(paths[&vec![n(2), n(9)]], 1);
    }

    #[test]
    fn windowed_latency() {
        let mut t = TruthRecorder::default();
        let c = ClassId::new(0);
        t.start(r(1), c, ms(5));
        t.complete(r(1), ms(15));
        t.start(r(2), c, ms(100));
        t.complete(r(2), ms(140));
        let w = t.class_latency_between(c, ms(0), ms(50));
        assert_eq!(w.count(), 1);
        assert_eq!(w.mean(), 10e6);
    }

    #[test]
    fn incomplete_requests_not_counted() {
        let mut t = TruthRecorder::default();
        let c = ClassId::new(0);
        t.start(r(1), c, ms(0));
        assert_eq!(t.completed_count(), 0);
        assert_eq!(t.class_latency(c).count(), 0);
    }
}
