//! The simulation event queue.

use crate::ids::NodeId;
use crate::message::Message;
use e2eprof_timeseries::Nanos;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled occurrence.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A message arrives at its destination.
    Deliver(Message),
    /// A server at the node finishes the carried work item.
    WorkDone(NodeId, Message),
    /// The client `NodeId` emits its next request.
    Emit(NodeId),
}

/// Min-heap of events ordered by time, with a sequence number making the
/// order of simultaneous events deterministic (FIFO).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Entry>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry {
    at: Nanos,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute time `at`.
    pub fn schedule(&mut self, at: Nanos, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Nanos, Event)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_millis(5), Event::Emit(NodeId::new(1)));
        q.schedule(Nanos::from_millis(2), Event::Emit(NodeId::new(2)));
        q.schedule(Nanos::from_millis(9), Event::Emit(NodeId::new(3)));
        let order: Vec<Nanos> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(
            order,
            vec![
                Nanos::from_millis(2),
                Nanos::from_millis(5),
                Nanos::from_millis(9)
            ]
        );
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..5u32 {
            q.schedule(Nanos::from_millis(1), Event::Emit(NodeId::new(i)));
        }
        let order: Vec<NodeId> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::Emit(n) => n,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, (0..5).map(NodeId::new).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(Nanos::from_millis(4), Event::Emit(NodeId::new(0)));
        assert_eq!(q.peek_time(), Some(Nanos::from_millis(4)));
        assert_eq!(q.len(), 1);
        let _ = q.pop();
        assert!(q.is_empty());
    }
}
