//! Property-based tests of the simulator's conservation laws: no request
//! is lost or duplicated, capture taps see consistent traffic on both ends
//! of every internal edge, and latencies are bounded below by the physics
//! of the configured path.

use e2eprof_netsim::capture::TraceKey;
use e2eprof_netsim::prelude::*;
use e2eprof_timeseries::Nanos;
use proptest::prelude::*;

/// Builds a linear chain `client -> s0 -> s1 -> ... -> s(depth-1)` with the
/// given per-node service times (ms) and 1 ms links.
fn chain_sim(service_ms: &[u64], rate: f64, seed: u64) -> Simulation {
    let mut t = TopologyBuilder::new();
    let class = t.service_class("c");
    let services: Vec<NodeId> = service_ms
        .iter()
        .enumerate()
        .map(|(i, &ms)| {
            t.service(
                &format!("s{i}"),
                ServiceConfig::new(DelayDist::constant_millis(ms)),
            )
        })
        .collect();
    let cli = t.client("cli", class, services[0], Workload::poisson(rate));
    t.connect(cli, services[0], DelayDist::constant_millis(1));
    for w in services.windows(2) {
        t.connect(w[0], w[1], DelayDist::constant_millis(1));
    }
    for (i, &s) in services.iter().enumerate() {
        if i + 1 < services.len() {
            t.route(s, class, Route::fixed(services[i + 1]));
        } else {
            t.route(s, class, Route::terminal());
        }
    }
    Simulation::new(t.build().expect("valid chain"), seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn no_request_lost_or_duplicated(
        depth in 1usize..5,
        service_ms in 1u64..8,
        rate in 5.0f64..40.0,
        seed in 0u64..1000,
    ) {
        let service: Vec<u64> = vec![service_ms; depth];
        let mut sim = chain_sim(&service, rate, seed);
        sim.run_until(Nanos::from_secs(5));
        let truth = sim.truth();
        prop_assert!(truth.completed_count() <= truth.started_count());
        // Under light load everything but the in-flight tail completes.
        prop_assert!(
            truth.completed_count() + 50 >= truth.started_count(),
            "started {} completed {}", truth.started_count(), truth.completed_count()
        );
    }

    #[test]
    fn latency_bounded_below_by_path_physics(
        depth in 1usize..4,
        service_ms in 2u64..10,
        seed in 0u64..1000,
    ) {
        let service: Vec<u64> = vec![service_ms; depth];
        let mut sim = chain_sim(&service, 10.0, seed);
        sim.run_until(Nanos::from_secs(5));
        let class = ClassId::new(0);
        let stats = sim.truth().class_latency(class);
        prop_assume!(stats.count() > 5);
        // Lower bound: every link crossed twice + all service times.
        let links = depth as u64; // client link + (depth − 1) inter-service links
        let min_ms = 2 * links + service_ms * depth as u64;
        prop_assert!(
            stats.mean() >= (min_ms as f64) * 1e6,
            "mean {} < min {}", stats.mean() / 1e6, min_ms
        );
    }

    #[test]
    fn sender_and_receiver_taps_agree(
        depth in 2usize..5,
        seed in 0u64..1000,
    ) {
        let service: Vec<u64> = vec![2; depth];
        let mut sim = chain_sim(&service, 20.0, seed);
        sim.run_until(Nanos::from_secs(3));
        // For every internal service-service edge, sender-side and
        // receiver-side packet counts are identical (in-flight packets at
        // the horizon may differ by the few still on the wire).
        for (src, dst) in sim.captures().edges().collect::<Vec<_>>() {
            if sim.topology().is_client(src) || sim.topology().is_client(dst) {
                continue;
            }
            let s = sim.captures().timestamps(TraceKey::at_sender(src, dst)).len();
            let r = sim.captures().timestamps(TraceKey::at_receiver(src, dst)).len();
            prop_assert!((s as i64 - r as i64).abs() <= 3, "edge {src}->{dst}: {s} vs {r}");
        }
    }

    #[test]
    fn capture_timestamps_are_sorted(
        depth in 1usize..4,
        seed in 0u64..1000,
    ) {
        let service: Vec<u64> = vec![3; depth];
        let mut sim = chain_sim(&service, 30.0, seed);
        sim.run_until(Nanos::from_secs(2));
        for (src, dst) in sim.captures().edges().collect::<Vec<_>>() {
            for key in [TraceKey::at_sender(src, dst), TraceKey::at_receiver(src, dst)] {
                let ts = sim.captures().timestamps(key);
                prop_assert!(ts.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }

    #[test]
    fn affinity_requests_follow_configured_path(
        depth in 1usize..4,
        seed in 0u64..1000,
    ) {
        let service: Vec<u64> = vec![2; depth];
        let mut sim = chain_sim(&service, 15.0, seed);
        sim.run_until(Nanos::from_secs(3));
        let class = ClassId::new(0);
        let expected: Vec<NodeId> = (0..depth as u32).map(NodeId::new).collect();
        let paths = sim.truth().class_paths(class);
        prop_assume!(!paths.is_empty());
        prop_assert_eq!(paths.len(), 1, "affinity must use exactly one path");
        prop_assert!(paths.contains_key(&expected));
    }

    #[test]
    fn identical_seeds_identical_worlds(seed in 0u64..1000) {
        let mut a = chain_sim(&[2, 3], 25.0, seed);
        let mut b = chain_sim(&[2, 3], 25.0, seed);
        a.run_until(Nanos::from_secs(2));
        b.run_until(Nanos::from_secs(2));
        prop_assert_eq!(a.truth().completed_count(), b.truth().completed_count());
        prop_assert_eq!(a.captures().total_packets(), b.captures().total_packets());
    }
}

#[test]
fn packets_per_message_multiplies_trace_density() {
    // Same topology and seed, 3 packets per message at the service: the
    // per-edge packet count triples while request completions stay equal.
    let build = |packets: u32| {
        let mut t = TopologyBuilder::new();
        let class = t.service_class("c");
        let svc = t.service(
            "svc",
            ServiceConfig::new(DelayDist::constant_millis(2)).with_packets_per_message(packets),
        );
        let cli = t.client("cli", class, svc, Workload::poisson(20.0));
        t.connect(cli, svc, DelayDist::constant_millis(1));
        t.route(svc, class, Route::terminal());
        let mut sim = Simulation::new(t.build().unwrap(), 3);
        sim.run_until(Nanos::from_secs(5));
        sim
    };
    let single = build(1);
    let triple = build(3);
    assert_eq!(
        single.truth().completed_count(),
        triple.truth().completed_count()
    );
    let key = TraceKey::at_receiver(NodeId::new(1), NodeId::new(0));
    assert_eq!(
        triple.captures().timestamps(key).len(),
        3 * single.captures().timestamps(key).len()
    );
}
